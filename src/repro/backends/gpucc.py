"""The GPU-CC backend: H100-style confidential computing for the GPU.

Where HIX relocates the *driver* into an SGX enclave and locks down the
MMIO path, GPU-CC keeps the kernel-mode driver untrusted and moves the
trust boundary onto the die:

* **Attestation** — the user verifies a vendor-issued *device
  certificate chain* (a per-device attestation key fused at manufacture
  and endorsed by the vendor CA) plus a signed firmware measurement,
  instead of an SGX enclave measurement chain.  There is no boot-time
  BIOS check by a trusted host component; a tampered BIOS is caught at
  session attestation when the signed ``fw_hash`` fails to match the
  vendor-published value.
* **Key exchange** — a two-party DH between the user and the device.
  The untrusted driver relays both legs but never sees key material:
  in CC mode the device's KEY_EXCHANGE reply carries only its public
  value (the ``A^g`` half that would let a relay derive the key is
  suppressed — see :meth:`repro.gpu.device.SimGpu._key_exchange`).
* **Sealed path** — bulk data crosses the host as ciphertext through an
  unprotected *bounce buffer* the driver DMAs from; the on-die AEAD
  engine (:class:`CcEngine`) seals/opens it next to the copy engines.
  No crypto kernels occupy the SMs and no trusted MMIO aperture exists:
  the CC firewall disables BAR1 outright.

Simulation conventions: MAC-as-signature — ``hmac(k, body)`` stands in
for a public-key signature by ``k``'s owner, and carrying the "public"
verification key inside a vendor-signed certificate models an ECDSA
attestation key.  Adversary primitives act through simulated hardware
state (DMA, MMIO, process memory), never through Python-level key
extraction, so holding key bytes in Python objects models on-die SRAM.
"""

from __future__ import annotations

import itertools
import logging
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.backends.base import DEFAULT_REGION_SIZE, TeeBackend, register
from repro.core import protocol
from repro.core.channel import (
    BULK_OFFSET,
    ChannelEnd,
    MessageQueue,
    REPLY_OFFSET,
    REQUEST_OFFSET,
    SharedMemoryRegion,
)
from repro.core.key_exchange import (
    DiffieHellman,
    SessionCrypto,
    build_session_crypto,
    derive_key,
    dh_bytes_to_int,
    int_to_dh_bytes,
)
from repro.core.runtime import HixModuleHandle, HostBuffer, _as_buffer
from repro.crypto.blob import (
    HEADER_LEN,
    open_blob,
    open_blob_chunks,
    seal_blob,
    seal_blob_chunks,
    sealed_size,
)
from repro.crypto.kdf import hkdf_sha256, hmac_sha256
from repro.errors import (
    AttestationError,
    CertChainError,
    DriverError,
    GpuUnavailable,
    ProtocolError,
    RequestRejected,
)
from repro.gdev.driver import GdevDriver, GdevContextHandle, GdevModule
from repro.gpu.bios import bios_hash
from repro.gpu.commands import CommandOpcode, encode_command
from repro.gpu.device import SimGpu
from repro.gpu.module import CubinImage, DevPtr, ParamValue
from repro.gpu.regs import REG_RESET, RESET_MAGIC
from repro.obs import audit as obs_audit
from repro.obs.tracer import STATE as _OBS
from repro.osmodel.driver_stub import map_gpu_mmio
from repro.osmodel.kernel import Kernel
from repro.osmodel.process import Process
from repro.pcie.root_complex import RootComplex
from repro.sim.clock import SimClock
from repro.sim.costs import CostModel
from repro.sim.pipeline import pipelined_time, pipelined_times

logger = logging.getLogger(__name__)

#: The vendor CA's verification key, baked into every client runtime
#: (models the public half of the vendor root certificate).
VENDOR_ROOT = b"gpucc-vendor-root-ca-v1"

#: What an emulated device can sign its forged certificate with: its own
#: made-up root, which no client trusts.
_FORGERY_ROOT = b"self-signed-forgery"

_CERT_BODY_TAG = b"gpucc-device-cert"
_ATTEST_TAG = b"gpucc-attest"


# ---------------------------------------------------------------------------
# Vendor PKI: device certificates and attestation reports
# ---------------------------------------------------------------------------

def attestation_key(device: SimGpu) -> bytes:
    """The device's attestation key, derived from its fused secret."""
    secret = getattr(device, "_device_secret", b"emulated-no-fused-secret")
    return hkdf_sha256(secret, info=b"cc-att", length=32)


def issue_device_cert(device: SimGpu) -> dict:
    """The device's certificate: its attestation key, vendor-endorsed.

    A physical device carries a certificate signed at manufacture by the
    vendor CA.  An emulated GPU has no fused key the vendor ever saw, so
    the best it can present is a self-signed forgery.
    """
    k_att = attestation_key(device)
    body = _CERT_BODY_TAG + str(device.bdf).encode() + k_att
    root = VENDOR_ROOT if device.is_physical else _FORGERY_ROOT
    return {
        "bdf": str(device.bdf),
        "k_att": k_att.hex(),
        "sig": hmac_sha256(root, body).hex(),
    }


def verify_device_cert(cert: dict) -> bytes:
    """Client-side chain verification; returns the attestation key."""
    try:
        bdf = str(cert["bdf"])
        k_att = bytes.fromhex(cert["k_att"])
        sig = bytes.fromhex(cert["sig"])
    except (KeyError, ValueError, TypeError) as exc:
        raise CertChainError(f"malformed device certificate: {exc}") from exc
    body = _CERT_BODY_TAG + bdf.encode() + k_att
    if hmac_sha256(VENDOR_ROOT, body) != sig:
        raise CertChainError(
            "device certificate does not chain to the vendor root "
            "(emulated or counterfeit GPU)")
    return k_att


def _attest_transcript(c_bytes: bytes, a_bytes: bytes, fw_hash: bytes,
                       ctx_id: int) -> bytes:
    return (_ATTEST_TAG + c_bytes + a_bytes + fw_hash
            + ctx_id.to_bytes(4, "big"))


def device_attestation_report(device: SimGpu, ctx_id: int,
                              c_bytes: bytes, a_bytes: bytes) -> dict:
    """The device's signed session report (SPDM-style measurement).

    Signed with the certified attestation key over the DH transcript,
    the *current* firmware hash, and the context id — so a relay can
    neither splice sessions nor hide a flashed BIOS.
    """
    fw_hash = bios_hash(device.bios_image)
    sig = hmac_sha256(attestation_key(device),
                      _attest_transcript(c_bytes, a_bytes, fw_hash, ctx_id))
    return {"fw_hash": fw_hash.hex(), "ctx_id": ctx_id, "sig": sig.hex()}


def verify_attestation_report(k_att: bytes, report: dict,
                              c_bytes: bytes, a_bytes: bytes,
                              ctx_id: int) -> bytes:
    """Check the report signature; returns the attested firmware hash."""
    try:
        fw_hash = bytes.fromhex(report["fw_hash"])
        sig = bytes.fromhex(report["sig"])
        reported_ctx = int(report["ctx_id"])
    except (KeyError, ValueError, TypeError) as exc:
        raise AttestationError(f"malformed attestation report: {exc}") from exc
    if reported_ctx != ctx_id:
        raise AttestationError("attestation report binds a different context")
    expected = hmac_sha256(
        k_att, _attest_transcript(c_bytes, a_bytes, fw_hash, ctx_id))
    if expected != sig:
        raise AttestationError(
            "device attestation report failed verification "
            "(transcript was tampered in transit)")
    return fw_hash


# ---------------------------------------------------------------------------
# The on-die AEAD engine
# ---------------------------------------------------------------------------

class CcEngine:
    """Fixed-function AEAD engine beside the copy engines.

    Holds per-context session crypto in on-die SRAM (Python objects,
    per the simulation convention above) and seals/opens data in place
    in VRAM.  Unlike HIX's ``hix.*`` crypto kernels this never occupies
    the SMs — no kernel launches, no ``gpu_dispatch`` charges.

    Tag failures raise :class:`~repro.errors.IntegrityError` straight to
    the caller (the user sees the detection); no device fault is queued,
    so a tampered transfer cannot poison the next submission.
    """

    def __init__(self, device: SimGpu, suite_name: str = "fast-auth") -> None:
        self._device = device
        self._suite_name = suite_name
        self._crypto: Dict[int, SessionCrypto] = {}

    def _ctx(self, ctx_id: int):
        try:
            return self._device.contexts[ctx_id]
        except KeyError:
            raise ProtocolError(f"no GPU context {ctx_id}") from None

    def register(self, ctx_id: int) -> None:
        """Latch the context's exchanged key into engine session state."""
        ctx = self._ctx(ctx_id)
        if ctx.session_key is None:
            raise ProtocolError(
                f"context {ctx_id} has no session key (key exchange "
                "did not complete)")
        self._crypto[ctx_id] = build_session_crypto(ctx.session_key,
                                                    self._suite_name)

    def _session(self, ctx_id: int) -> SessionCrypto:
        crypto = self._crypto.get(ctx_id)
        if crypto is None:
            raise ProtocolError(
                f"engine holds no session for context {ctx_id}")
        return crypto

    def forget(self, ctx_id: int) -> None:
        self._crypto.pop(ctx_id, None)

    def session_crypto(self, ctx_id: int) -> SessionCrypto:
        """Pin the session state for an in-flight exchange.

        The engine finishes sealing the reply of the request it is
        currently serving even if that request tears the session down
        (ctx destroy, shutdown) — callers grab the handle before
        dispatch and pass it back to :meth:`seal_reply`.
        """
        return self._session(ctx_id)

    def reset(self) -> None:
        self._crypto.clear()

    @staticmethod
    def _bulk_aad(ctx_id: int) -> bytes:
        return b"gpucc-bulk-ctx-%d" % ctx_id

    # -- control channel ------------------------------------------------

    def open_request(self, ctx_id: int, sealed: bytes) -> bytes:
        crypto = self._session(ctx_id)
        return open_blob(crypto.request_suite, sealed,
                         associated_data=protocol.REQUEST_AAD,
                         replay_guard=crypto.request_guard)

    def seal_reply(self, ctx_id: int, payload: bytes,
                   crypto: Optional[SessionCrypto] = None) -> bytes:
        crypto = crypto if crypto is not None else self._session(ctx_id)
        return seal_blob(crypto.reply_suite, crypto.reply_nonces, payload,
                         associated_data=protocol.REPLY_AAD)

    # -- bulk path ------------------------------------------------------

    def open_into(self, ctx_id: int, src_va: int, blob_len: int,
                  dst_va: int) -> int:
        """Open a sealed blob staged in VRAM; plaintext lands at *dst_va*."""
        crypto = self._session(ctx_id)
        ctx = self._ctx(ctx_id)
        sealed = self._device.read_ctx(ctx, src_va, blob_len)
        plaintext = open_blob(crypto.bulk_suite, sealed,
                              associated_data=self._bulk_aad(ctx_id),
                              replay_guard=crypto.bulk_h2d_guard)
        self._device.write_ctx(ctx, dst_va, plaintext)
        return len(plaintext)

    def seal_from(self, ctx_id: int, src_va: int, nbytes: int,
                  dst_va: int) -> int:
        """Seal *nbytes* of VRAM; the blob lands at *dst_va* (staging)."""
        crypto = self._session(ctx_id)
        ctx = self._ctx(ctx_id)
        plaintext = self._device.read_ctx(ctx, src_va, nbytes)
        blob = seal_blob(crypto.bulk_suite, crypto.bulk_d2h_nonces,
                         plaintext, associated_data=self._bulk_aad(ctx_id))
        self._device.write_ctx(ctx, dst_va, blob)
        return len(blob)

    def open_scatter(self, ctx_id: int, src_va: int, blob_len: int,
                     gpu_vas: Sequence[int], lengths: Sequence[int]) -> int:
        """Open one fused frame and scatter its chunks to their targets."""
        crypto = self._session(ctx_id)
        ctx = self._ctx(ctx_id)
        sealed = self._device.read_ctx(ctx, src_va, blob_len)
        chunks = open_blob_chunks(crypto.bulk_suite, sealed, list(lengths),
                                  associated_data=self._bulk_aad(ctx_id),
                                  replay_guard=crypto.bulk_h2d_guard)
        total = 0
        for gpu_va, chunk in zip(gpu_vas, chunks):
            self._device.write_ctx(ctx, gpu_va, chunk)
            total += len(chunk)
        return total

    def seal_gather(self, ctx_id: int, gpu_vas: Sequence[int],
                    lengths: Sequence[int], dst_va: int) -> int:
        """Gather chunks from VRAM and seal them as one fused frame."""
        crypto = self._session(ctx_id)
        ctx = self._ctx(ctx_id)
        chunks = [self._device.read_ctx(ctx, gpu_va, nbytes)
                  for gpu_va, nbytes in zip(gpu_vas, lengths)]
        blob = seal_blob_chunks(crypto.bulk_suite, crypto.bulk_d2h_nonces,
                                chunks,
                                associated_data=self._bulk_aad(ctx_id))
        self._device.write_ctx(ctx, dst_va, blob)
        return len(blob)


# ---------------------------------------------------------------------------
# The untrusted kernel-mode driver (service side)
# ---------------------------------------------------------------------------

@dataclass
class CcSession:
    """Driver-side bookkeeping for one connected user (no key material)."""

    session_id: int
    ctx: GdevContextHandle
    end: ChannelEnd
    modules: Dict[int, GdevModule] = field(default_factory=dict)
    module_ids: "itertools.count" = field(
        default_factory=lambda: itertools.count(1))
    closed: bool = False


class GpuCcService:
    """The plain (untrusted) GPU driver process serving CC sessions.

    Structurally the same request loop as the HIX GPU enclave — so the
    serving layer is backend-agnostic — but with the trust inverted:
    this process relays ciphertext it cannot open, and every security
    property is enforced by the device (CC firewall, on-die engine,
    certified attestation).
    """

    def __init__(self, kernel: Kernel, root_complex: RootComplex,
                 gpu: SimGpu, suite_name: str = "fast-auth",
                 region_size: int = DEFAULT_REGION_SIZE) -> None:
        self._kernel = kernel
        self._root_complex = root_complex
        self._gpu = gpu
        self._suite_name = suite_name
        self._region_size = region_size

        self.process: Optional[Process] = None
        self.driver: Optional[GdevDriver] = None
        self.engine: Optional[CcEngine] = None
        self.sessions: Dict[int, CcSession] = {}
        self.alive = False
        self._regions = None

    @property
    def device(self) -> SimGpu:
        return self._gpu

    # ------------------------------------------------------------------ boot

    def boot(self) -> "GpuCcService":
        """Bring up the untrusted driver and flip the device into CC mode."""
        self.process = self._kernel.create_process("gpucc-driver")
        self._regions = map_gpu_mmio(self._kernel, self._root_complex,
                                     self._gpu.bdf, self.process)
        # The on-die firewall engages before any tenant data exists; from
        # here on the BAR1 VRAM aperture refuses all host accesses.
        self._gpu.enable_cc()
        self.driver = GdevDriver(self._kernel, self._root_complex, self._gpu,
                                 process=self.process, regions=self._regions,
                                 costs=None)
        # Reset to scrub pre-existing state (the device scrubs VRAM and
        # drops contexts; CC mode is sticky across reset by design).
        self.driver.channel.reg_write(REG_RESET, RESET_MAGIC)
        self.driver = GdevDriver(self._kernel, self._root_complex, self._gpu,
                                 process=self.process, regions=self._regions,
                                 costs=None)
        self.engine = CcEngine(self._gpu, self._suite_name)
        self.alive = True
        logger.info("GPU-CC driver up: device=%s cc_mode=%s",
                    self._gpu.bdf, self._gpu.cc_mode)
        return self

    # ------------------------------------------------------- channel plumbing

    def open_channel(self, user_process: Process,
                     queue_depth: Optional[int] = None) -> ChannelEnd:
        region = SharedMemoryRegion(self._kernel, self._region_size)
        region.attach(user_process)
        region.attach(self.process)
        return ChannelEnd(
            region=region,
            to_service=MessageQueue(f"to-service:{user_process.pid}",
                                    capacity=queue_depth),
            to_user=MessageQueue(f"to-user:{user_process.pid}",
                                 capacity=queue_depth),
            user_process=user_process,
        )

    def _check_alive(self) -> None:
        if not self.alive:
            raise GpuUnavailable("GPU-CC driver is not running")

    # --------------------------------------------------- session establishment

    def handle_hello(self, end: ChannelEnd) -> None:
        """Relay the 2-party exchange; fetch cert + report from the device.

        The hello and its ack are plaintext: they carry only public DH
        values and signed evidence, and this process couldn't seal them
        anyway — it never holds a key.
        """
        self._check_alive()
        note = end.to_service.recv()
        if note.kind != "hello":
            raise ProtocolError(f"expected hello, got {note.kind!r}")
        raw = end.region.read(self.process, note.offset, note.length)
        hello = protocol.decode_message(raw)
        a_bytes = bytes.fromhex(hello["dh_a"])
        a_value = dh_bytes_to_int(a_bytes)

        ctx = self.driver.create_context(end.user_process)
        resp_va = self.driver.malloc(ctx, 512)
        # Two-party DH: both blob slots carry the user's A, so the device
        # derives K = KDF(A^g).  In CC mode its reply holds only C = g^g
        # (the A^g half is suppressed on-die), so this relay learns
        # nothing it can derive the key from.
        self.driver.channel.submit([encode_command(
            CommandOpcode.KEY_EXCHANGE, ctx.ctx_id, (resp_va,),
            blob=int_to_dh_bytes(a_value) + int_to_dh_bytes(a_value))])
        # No trusted aperture exists under the firewall: bounce the reply
        # out through the ordinary DMA staging path (it's public data).
        reply_raw = self.driver.memcpy_d2h(ctx, resp_va, 512)
        self.driver.free(ctx, resp_va, cleanse=True)
        c_bytes = reply_raw[:256]

        self.engine.register(ctx.ctx_id)
        cert = issue_device_cert(self._gpu)
        report = device_attestation_report(self._gpu, ctx.ctx_id,
                                           c_bytes, a_bytes)

        session = CcSession(session_id=end.user_process.pid,
                            ctx=ctx, end=end)
        self.sessions[session.session_id] = session
        end.session_id = session.session_id
        logger.info("CC session %d established: ctx %d",
                    session.session_id, ctx.ctx_id)

        reply = protocol.encode_message({
            "cert": cert,
            "report": report,
            "dh_c": c_bytes.hex(),
            "ctx_id": ctx.ctx_id,
        })
        end.region.write(self.process, REPLY_OFFSET, reply)
        end.to_user.send("hello-ack", REPLY_OFFSET, len(reply))

    # ----------------------------------------------------------- request loop

    def poll(self, end: ChannelEnd) -> None:
        """Serve one pending request notification on *end*."""
        self._check_alive()
        session = self.sessions.get(end.session_id)
        if session is None or session.closed:
            raise GpuUnavailable("no live session on this channel")
        note = end.to_service.recv()
        if note.kind != "request":
            raise ProtocolError(f"expected request, got {note.kind!r}")
        sealed = end.region.read(self.process, note.offset, note.length)
        # The engine opens the request on-die; a forged or replayed
        # request raises (IntegrityError/ReplayError) past this driver —
        # tampering is an attack on the channel, not a request to serve.
        raw = self.engine.open_request(session.ctx.ctx_id, sealed)
        request = protocol.decode_message(raw)
        # Pin the engine session up front: a ctx-destroy/shutdown request
        # drops the engine state, but its own ack must still seal.
        crypto = self.engine.session_crypto(session.ctx.ctx_id)
        try:
            op = protocol.check_request(request)
            result = self._dispatch(session, op, request)
        except DriverError as exc:
            result = protocol.error_reply(exc)
        reply = self.engine.seal_reply(session.ctx.ctx_id,
                                       protocol.encode_message(result),
                                       crypto=crypto)
        end.region.write(self.process, REPLY_OFFSET, reply)
        end.to_user.send("reply", REPLY_OFFSET, len(reply))

    def _dispatch(self, session: CcSession, op: str, request: dict) -> dict:
        if op == protocol.OP_MALLOC:
            gpu_va = self.driver.malloc(session.ctx, int(request["nbytes"]))
            return {"ok": True, "gpu_va": gpu_va}
        if op == protocol.OP_FREE:
            # The device scrubs freed ranges before reuse, as under HIX.
            self.driver.free(session.ctx, int(request["gpu_va"]), cleanse=True)
            return {"ok": True}
        if op == protocol.OP_MEMCPY_HTOD:
            return self._memcpy_htod(session, int(request["gpu_va"]),
                                     int(request["blob_len"]))
        if op == protocol.OP_MEMCPY_DTOH:
            return self._memcpy_dtoh(session, int(request["gpu_va"]),
                                     int(request["nbytes"]))
        if op == protocol.OP_MEMCPY_HTOD_BATCH:
            return self._memcpy_htod_batch(
                session, [int(va) for va in request["gpu_vas"]],
                [int(n) for n in request["lengths"]],
                int(request["blob_len"]))
        if op == protocol.OP_MEMCPY_DTOH_BATCH:
            return self._memcpy_dtoh_batch(
                session, [int(va) for va in request["gpu_vas"]],
                [int(n) for n in request["lengths"]])
        if op == protocol.OP_MODULE_LOAD:
            module = self.driver.load_module(
                session.ctx, CubinImage([str(n) for n in request["kernels"]]))
            module_id = next(session.module_ids)
            session.modules[module_id] = module
            return {"ok": True, "module_id": module_id}
        if op == protocol.OP_LAUNCH:
            module = session.modules.get(int(request["module_id"]))
            if module is None:
                raise ProtocolError("launch references unknown module")
            self.driver.launch(
                session.ctx, module, str(request["kernel"]),
                protocol.decode_params(request["params"]),
                compute_seconds=float(request.get("compute_seconds", 0.0)))
            return {"ok": True}
        if op == protocol.OP_LAUNCH_BATCH:
            return self._launch_batch(session, request["launches"])
        if op == protocol.OP_CTX_DESTROY:
            self._close_session(session)
            return {"ok": True}
        if op == protocol.OP_SHUTDOWN:
            self.graceful_shutdown()
            return {"ok": True}
        raise ProtocolError(f"unhandled op {op!r}")  # pragma: no cover

    # ------------------------------------------- bounce-buffer secure memcpy

    def _memcpy_htod(self, session: CcSession, gpu_va: int,
                     blob_len: int) -> dict:
        """Bounce region -> VRAM staging (ciphertext), then on-die open."""
        staging_va = self.driver.malloc(session.ctx, blob_len)
        self.driver.channel.submit([encode_command(
            CommandOpcode.MEMCPY_H2D, session.ctx.ctx_id,
            (session.end.region.paddr + BULK_OFFSET, staging_va, blob_len))])
        self.engine.open_into(session.ctx.ctx_id, staging_va, blob_len,
                              gpu_va)
        self.driver.free(session.ctx, staging_va)
        return {"ok": True, "plaintext_len": blob_len - HEADER_LEN}

    def _memcpy_dtoh(self, session: CcSession, gpu_va: int,
                     nbytes: int) -> dict:
        """On-die seal into VRAM staging, then staging -> bounce region."""
        blob_len = sealed_size(nbytes)
        staging_va = self.driver.malloc(session.ctx, blob_len)
        self.engine.seal_from(session.ctx.ctx_id, gpu_va, nbytes, staging_va)
        self.driver.channel.submit([encode_command(
            CommandOpcode.MEMCPY_D2H, session.ctx.ctx_id,
            (staging_va, session.end.region.paddr + BULK_OFFSET, blob_len))])
        self.driver.free(session.ctx, staging_va, cleanse=True)
        return {"ok": True, "blob_len": blob_len}

    def _memcpy_htod_batch(self, session: CcSession, gpu_vas: list,
                           lengths: list, blob_len: int) -> dict:
        if len(gpu_vas) != len(lengths) or not gpu_vas:
            raise ProtocolError("batch gpu_vas/lengths tables do not match")
        staging_va = self.driver.malloc(session.ctx, blob_len)
        self.driver.channel.submit([encode_command(
            CommandOpcode.MEMCPY_H2D, session.ctx.ctx_id,
            (session.end.region.paddr + BULK_OFFSET, staging_va, blob_len))])
        self.engine.open_scatter(session.ctx.ctx_id, staging_va, blob_len,
                                 gpu_vas, lengths)
        self.driver.free(session.ctx, staging_va)
        return {"ok": True, "plaintext_len": sum(lengths)}

    def _memcpy_dtoh_batch(self, session: CcSession, gpu_vas: list,
                           lengths: list) -> dict:
        if len(gpu_vas) != len(lengths) or not gpu_vas:
            raise ProtocolError("batch gpu_vas/lengths tables do not match")
        blob_len = sealed_size(sum(lengths))
        staging_va = self.driver.malloc(session.ctx, blob_len)
        self.engine.seal_gather(session.ctx.ctx_id, gpu_vas, lengths,
                                staging_va)
        self.driver.channel.submit([encode_command(
            CommandOpcode.MEMCPY_D2H, session.ctx.ctx_id,
            (staging_va, session.end.region.paddr + BULK_OFFSET, blob_len))])
        self.driver.free(session.ctx, staging_va, cleanse=True)
        return {"ok": True, "blob_len": blob_len}

    def _launch_batch(self, session: CcSession, launches: list) -> dict:
        if not isinstance(launches, list) or not launches:
            raise ProtocolError("launch batch must be a non-empty list")
        for item in launches:
            module = session.modules.get(int(item["module_id"]))
            if module is None:
                raise ProtocolError("launch references unknown module")
            self.driver.launch(
                session.ctx, module, str(item["kernel"]),
                protocol.decode_params(item["params"]),
                compute_seconds=float(item.get("compute_seconds", 0.0)))
        return {"ok": True}

    # ------------------------------------------------------------- termination

    def _close_session(self, session: CcSession) -> None:
        self.driver.destroy_context(session.ctx, cleanse=True)
        self.engine.forget(session.ctx.ctx_id)
        session.closed = True
        self.sessions.pop(session.session_id, None)

    def graceful_shutdown(self) -> None:
        """Tear down sessions, scrub the device, drop engine state."""
        for session in list(self.sessions.values()):
            self._close_session(session)
            session.end.to_user.send("gpu-untrusted", 0, 0)
        self.driver.channel.reg_write(REG_RESET, RESET_MAGIC)
        self.engine.reset()
        self.alive = False


# ---------------------------------------------------------------------------
# The user-side runtime
# ---------------------------------------------------------------------------

class GpuCcApi:
    """The user runtime for GPU-CC: the same ``cu*`` facade as HixApi.

    The user side is modeled as running inside a CPU TEE (a CVM in the
    H100 deployment); its session keys live in Python objects under the
    same on-die-SRAM convention as the engine's.  There is no SGX
    enclave and no local-attestation report — trust in the device comes
    from the certificate chain and the signed firmware measurement.
    """

    secure = True

    def __init__(self, kernel: Kernel, process: Process,
                 service: GpuCcService, clock: Optional[SimClock] = None,
                 costs: Optional[CostModel] = None,
                 expected_fw_hash: Optional[bytes] = None,
                 suite_name: str = "fast-auth",
                 channel_queue_depth: Optional[int] = None) -> None:
        self._kernel = kernel
        self._process = process
        self._service = service
        self._clock = clock
        self._costs = costs
        self._suite_name = suite_name
        self._channel_queue_depth = channel_queue_depth
        self._expected_fw_hash = expected_fw_hash
        self._end: Optional[ChannelEnd] = None
        self._crypto: Optional[SessionCrypto] = None
        self._ctx_id: Optional[int] = None
        self._bulk_ad: Optional[bytes] = None
        self.user_enclave = getattr(process, "enclave", None)

    # -- timing helpers -------------------------------------------------

    def _charge(self, seconds: float, category: str) -> None:
        if self._clock is not None and seconds > 0.0:
            self._clock.advance(seconds, category)

    def _rpc_overhead(self) -> None:
        if self._costs is None:
            return
        self._charge(self._costs.rpc_round_trip_gpucc(), "ipc")

    # -- lifecycle ------------------------------------------------------

    def __enter__(self) -> "GpuCcApi":
        if self._end is None:
            self.cuCtxCreate()
        return self

    def __exit__(self, *exc) -> None:
        try:
            self.cuCtxDestroy()
        except DriverError:
            pass

    def cuInit(self) -> "GpuCcApi":
        return self

    def cuCtxCreate(self) -> "GpuCcApi":
        """Certified device attestation + 2-party key exchange."""
        tracer = _OBS.tracer
        if tracer is None:
            return self._audited_ctx_create()
        with tracer.span("gpucc.cuCtxCreate", "gpucc",
                         pid=self._process.pid):
            return self._audited_ctx_create()

    def _audited_ctx_create(self) -> "GpuCcApi":
        """Session setup with its security evidence on the audit log:
        the attestation verdict — including which stage failed, the
        cert chain or the SPDM report — and the key exchange."""
        log = obs_audit.audit_log()
        subject = self._process.name
        now = self._clock.now if self._clock is not None else 0.0
        try:
            result = self._cuCtxCreate()
        except CertChainError as exc:
            log.record("gpucc.attestation", subject, time=now, ok=False,
                       detail=str(exc), cause="cert_chain",
                       backend="gpucc")
            raise
        except AttestationError as exc:
            log.record("gpucc.attestation", subject, time=now, ok=False,
                       detail=str(exc), cause="report", backend="gpucc")
            raise
        now = self._clock.now if self._clock is not None else now
        log.record("gpucc.attestation", subject, time=now,
                   detail="device cert chain and attestation report "
                          "verified", backend="gpucc")
        log.record("gpucc.key_exchange", subject, time=now,
                   detail="session key derived (device DH transcript "
                          "bound to report)", backend="gpucc",
                   ctx_id=self._ctx_id)
        return result

    def _cuCtxCreate(self) -> "GpuCcApi":
        if self._end is not None:
            raise DriverError("context already created")
        if self._costs is not None:
            self._charge(self._costs.gpucc_task_init, "task_init")
            self._charge(self._costs.gpucc_session_setup, "session_setup")
        end = self._service.open_channel(
            self._process, queue_depth=self._channel_queue_depth)

        dh_u = DiffieHellman(seed=b"cc-user-%d" % self._process.pid)
        a_bytes = int_to_dh_bytes(dh_u.public_value)
        hello = protocol.encode_message({"dh_a": a_bytes.hex()})
        end.region.write(self._process, REQUEST_OFFSET, hello)
        end.to_service.send("hello", REQUEST_OFFSET, len(hello))
        self._service.handle_hello(end)

        note = end.to_user.recv()
        if note.kind != "hello-ack":
            raise ProtocolError(f"expected hello-ack, got {note.kind!r}")
        raw = end.region.read(self._process, note.offset, note.length)
        ack = protocol.decode_message(raw)
        # Chain first: an emulated GPU fails here (CertChainError), a
        # genuine one proceeds to the transcript + firmware checks.
        k_att = verify_device_cert(ack["cert"])
        c_bytes = bytes.fromhex(ack["dh_c"])
        ctx_id = int(ack["ctx_id"])
        fw_hash = verify_attestation_report(k_att, ack["report"],
                                            c_bytes, a_bytes, ctx_id)
        if (self._expected_fw_hash is not None
                and fw_hash != self._expected_fw_hash):
            raise AttestationError(
                "GPU firmware measurement does not match the "
                "vendor-published hash (device BIOS was modified)")
        session_key = derive_key(dh_u.raise_value(dh_bytes_to_int(c_bytes)))
        self._crypto = build_session_crypto(session_key, self._suite_name)
        self._ctx_id = ctx_id
        self._bulk_ad = CcEngine._bulk_aad(ctx_id)
        self._end = end
        return self

    def cuCtxDestroy(self) -> None:
        if self._end is None:
            return
        tracer = _OBS.tracer
        if tracer is None:
            return self._cuCtxDestroy()
        with tracer.span("gpucc.cuCtxDestroy", "gpucc", ctx_id=self._ctx_id):
            return self._cuCtxDestroy()

    def _cuCtxDestroy(self) -> None:
        self._request({"op": protocol.OP_CTX_DESTROY})
        self._end = None
        self._crypto = None
        self._ctx_id = None
        self._bulk_ad = None

    @property
    def ctx_id(self) -> int:
        if self._ctx_id is None:
            raise DriverError("no current context (call cuCtxCreate)")
        return self._ctx_id

    # -- sealed request/reply -------------------------------------------

    def _request(self, payload: dict) -> dict:
        if self._end is None or self._crypto is None:
            raise DriverError("no current context (call cuCtxCreate)")
        self._rpc_overhead()
        sealed = seal_blob(self._crypto.request_suite,
                           self._crypto.request_nonces,
                           protocol.encode_message(payload),
                           associated_data=protocol.REQUEST_AAD)
        self._end.region.write(self._process, REQUEST_OFFSET, sealed)
        self._end.to_service.send("request", REQUEST_OFFSET, len(sealed))
        self._service.poll(self._end)
        note = self._end.to_user.recv()
        if note.kind == "gpu-untrusted":
            raise DriverError(
                "GPU-CC driver terminated; GPU no longer trusted")
        raw = self._end.region.read(self._process, note.offset, note.length)
        reply = protocol.decode_message(open_blob(
            self._crypto.reply_suite, raw,
            associated_data=protocol.REPLY_AAD,
            replay_guard=self._crypto.reply_guard))
        if not reply.get("ok"):
            raise RequestRejected(
                f"GPU-CC driver rejected request: {reply!r}",
                code=str(reply.get("code", protocol.ERR_DRIVER)))
        return reply

    # -- memory ---------------------------------------------------------

    def cuMemAlloc(self, nbytes: int) -> DevPtr:
        reply = self._request({"op": protocol.OP_MALLOC, "nbytes": nbytes})
        return DevPtr(int(reply["gpu_va"]))

    def cuMemFree(self, dptr: DevPtr) -> None:
        self._request({"op": protocol.OP_FREE, "gpu_va": dptr.addr})

    def _bulk_chunk_limit(self) -> int:
        return self._end.region.bulk_capacity - HEADER_LEN

    def cuMemcpyHtoD(self, dptr: DevPtr, data: HostBuffer) -> None:
        """Sealed upload through the bounce buffer + on-die open.

        Per chunk: seal in the CPU TEE, place ciphertext in the bounce
        region, the driver DMAs it into VRAM staging, the on-die engine
        opens it in place.  Time is charged as a three-stage pipeline
        (CPU seal || bounce staging copy || PCIe DMA) plus the engine
        pass — the engine is fixed-function, so no kernel dispatch.
        """
        tracer = _OBS.tracer
        if tracer is None:
            return self._cuMemcpyHtoD(dptr, data)
        with tracer.span("gpucc.cuMemcpyHtoD", "gpucc", ctx_id=self._ctx_id,
                         bytes=_as_buffer(data).nbytes):
            return self._cuMemcpyHtoD(dptr, data)

    def _cuMemcpyHtoD(self, dptr: DevPtr, data: HostBuffer) -> None:
        raw = _as_buffer(data)
        total = raw.nbytes
        limit = self._bulk_chunk_limit()
        offset = 0
        while offset < total or (not total and offset == 0):
            chunk = raw[offset:offset + limit]
            sealed = seal_blob(self._crypto.bulk_suite,
                               self._crypto.bulk_h2d_nonces,
                               bytes(chunk), associated_data=self._bulk_ad)
            self._end.region.write(self._process, BULK_OFFSET, sealed)
            self._request({"op": protocol.OP_MEMCPY_HTOD,
                           "gpu_va": dptr.addr + offset,
                           "blob_len": len(sealed)})
            offset += len(chunk)
            if not total:
                break
        if self._costs is not None:
            costs = self._costs
            modeled = costs.scaled(len(raw))
            self._charge(costs.memcpy_request_overhead_gpucc, "ipc")
            self._charge(pipelined_time(
                modeled,
                [costs.cpu_aead_bandwidth, costs.gpucc_bounce_bandwidth,
                 costs.pcie_h2d_bandwidth],
                costs.pipeline_chunk_bytes,
                stage_latencies=[costs.cpu_aead_setup_latency,
                                 costs.dma_setup_latency,
                                 costs.dma_setup_latency]), "copy_h2d")
            self._charge(costs.gpucc_engine_time(len(raw)), "crypto_gpu")

    def cuMemcpyDtoH(self, dptr: DevPtr, nbytes: int) -> bytes:
        """Sealed download: on-die seal, bounce buffer, open in CPU TEE."""
        tracer = _OBS.tracer
        if tracer is None:
            return self._cuMemcpyDtoH(dptr, nbytes)
        with tracer.span("gpucc.cuMemcpyDtoH", "gpucc", ctx_id=self._ctx_id,
                         bytes=nbytes):
            return self._cuMemcpyDtoH(dptr, nbytes)

    def _cuMemcpyDtoH(self, dptr: DevPtr, nbytes: int) -> bytes:
        limit = self._bulk_chunk_limit()
        out = bytearray(nbytes)
        view = memoryview(out)
        offset = 0
        while offset < nbytes:
            chunk = min(nbytes - offset, limit)
            reply = self._request({"op": protocol.OP_MEMCPY_DTOH,
                                   "gpu_va": dptr.addr + offset,
                                   "nbytes": chunk})
            blob_len = int(reply["blob_len"])
            if blob_len != sealed_size(chunk):
                raise ProtocolError("unexpected sealed blob size")
            sealed = self._end.region.read(self._process, BULK_OFFSET,
                                           blob_len)
            view[offset:offset + chunk] = open_blob(
                self._crypto.bulk_suite, sealed,
                associated_data=self._bulk_ad,
                replay_guard=self._crypto.bulk_d2h_guard)
            offset += chunk
        if self._costs is not None:
            costs = self._costs
            modeled = costs.scaled(nbytes)
            self._charge(costs.memcpy_request_overhead_gpucc, "ipc")
            self._charge(costs.gpucc_engine_time(nbytes), "crypto_gpu")
            self._charge(pipelined_time(
                modeled,
                [costs.pcie_d2h_bandwidth, costs.gpucc_bounce_bandwidth,
                 costs.cpu_aead_bandwidth],
                costs.pipeline_chunk_bytes,
                stage_latencies=[costs.dma_setup_latency,
                                 costs.dma_setup_latency,
                                 costs.cpu_aead_setup_latency]), "copy_d2h")
        return bytes(out)

    # -- batched transfers ----------------------------------------------

    def cuMemcpyHtoDBatch(self, items: Sequence) -> None:
        """Batched uploads; framing mirrors :meth:`HixApi.cuMemcpyHtoDBatch`.

        Consecutive items fuse into one sealed frame per bounce-region
        fill; the engine authenticates each frame once and scatters the
        chunks.  Simulated time is charged per item, exactly as the
        scalar sequence would charge it.
        """
        tracer = _OBS.tracer
        if tracer is None:
            return self._cuMemcpyHtoDBatch(items)
        with tracer.span("gpucc.cuMemcpyHtoDBatch", "gpucc",
                         ctx_id=self._ctx_id, items=len(items)):
            return self._cuMemcpyHtoDBatch(items)

    def _cuMemcpyHtoDBatch(self, items: Sequence) -> None:
        limit = self._bulk_chunk_limit()
        sizes: list = []

        frame_chunks: list = []
        frame_vas: list = []
        frame_lens: list = []
        frame_bytes = 0
        frames = 0

        def flush_frame() -> None:
            nonlocal frame_bytes, frames
            if not frame_chunks:
                return
            sealed = seal_blob_chunks(
                self._crypto.bulk_suite, self._crypto.bulk_h2d_nonces,
                [bytes(chunk) for chunk in frame_chunks],
                associated_data=self._bulk_ad)
            self._end.region.write(self._process, BULK_OFFSET, sealed)
            self._request({"op": protocol.OP_MEMCPY_HTOD_BATCH,
                           "gpu_vas": frame_vas, "lengths": frame_lens,
                           "blob_len": len(sealed)})
            frame_chunks.clear()
            frame_vas.clear()
            frame_lens.clear()
            frame_bytes = 0
            frames += 1

        for dptr, data in items:
            raw = _as_buffer(data)
            sizes.append(raw.nbytes)
            if raw.nbytes > limit:
                flush_frame()
                self._scalar_htod_bytes(dptr, raw)
                frames += 1
                continue
            if frame_bytes + raw.nbytes > limit:
                flush_frame()
            frame_chunks.append(raw)
            frame_vas.append(dptr.addr)
            frame_lens.append(raw.nbytes)
            frame_bytes += raw.nbytes
        flush_frame()

        if self._costs is not None and sizes:
            costs = self._costs
            copy = pipelined_times(
                [costs.scaled(n) for n in sizes],
                [costs.cpu_aead_bandwidth, costs.gpucc_bounce_bandwidth,
                 costs.pcie_h2d_bandwidth],
                costs.pipeline_chunk_bytes,
                stage_latencies=[costs.cpu_aead_setup_latency,
                                 costs.dma_setup_latency,
                                 costs.dma_setup_latency])
            for _ in range(len(sizes) - frames):
                self._charge(costs.rpc_round_trip_gpucc(), "ipc")
            for nbytes, seconds in zip(sizes, copy):
                self._charge(costs.memcpy_request_overhead_gpucc, "ipc")
                self._charge(float(seconds), "copy_h2d")
                self._charge(costs.gpucc_engine_time(nbytes), "crypto_gpu")

    def _scalar_htod_bytes(self, dptr: DevPtr, raw: memoryview) -> None:
        """Uncharged scalar upload used by the batch fallback path."""
        limit = self._bulk_chunk_limit()
        offset = 0
        while offset < raw.nbytes or (not raw.nbytes and offset == 0):
            chunk = raw[offset:offset + limit]
            sealed = seal_blob(self._crypto.bulk_suite,
                               self._crypto.bulk_h2d_nonces,
                               bytes(chunk), associated_data=self._bulk_ad)
            self._end.region.write(self._process, BULK_OFFSET, sealed)
            self._request({"op": protocol.OP_MEMCPY_HTOD,
                           "gpu_va": dptr.addr + offset,
                           "blob_len": len(sealed)})
            offset += len(chunk)
            if not raw.nbytes:
                break

    def cuMemcpyDtoHBatch(self, items: Sequence) -> list:
        """Batched downloads; one engine gather-seal per fused frame."""
        tracer = _OBS.tracer
        if tracer is None:
            return self._cuMemcpyDtoHBatch(items)
        with tracer.span("gpucc.cuMemcpyDtoHBatch", "gpucc",
                         ctx_id=self._ctx_id, items=len(items)):
            return self._cuMemcpyDtoHBatch(items)

    def _cuMemcpyDtoHBatch(self, items: Sequence) -> list:
        limit = self._bulk_chunk_limit()
        results: list = [None] * len(items)
        sizes = [int(nbytes) for _, nbytes in items]

        frame: list = []       # (result_index, gpu_va, nbytes)
        frame_bytes = 0
        frames = 0

        def flush_frame() -> None:
            nonlocal frame_bytes, frames
            if not frame:
                return
            gpu_vas = [va for _, va, _ in frame]
            lengths = [n for _, _, n in frame]
            reply = self._request({"op": protocol.OP_MEMCPY_DTOH_BATCH,
                                   "gpu_vas": gpu_vas, "lengths": lengths})
            blob_len = int(reply["blob_len"])
            if blob_len != sealed_size(sum(lengths)):
                raise ProtocolError("unexpected sealed batch blob size")
            sealed = self._end.region.read(self._process, BULK_OFFSET,
                                           blob_len)
            chunks = open_blob_chunks(
                self._crypto.bulk_suite, sealed, lengths,
                associated_data=self._bulk_ad,
                replay_guard=self._crypto.bulk_d2h_guard)
            for (index, _, _), chunk in zip(frame, chunks):
                results[index] = chunk
            frame.clear()
            frame_bytes = 0
            frames += 1

        for index, (dptr, nbytes) in enumerate(items):
            nbytes = int(nbytes)
            if nbytes > limit:
                flush_frame()
                results[index] = self._cuMemcpyDtoH_uncharged(dptr, nbytes)
                frames += 1
                continue
            if frame_bytes + nbytes > limit:
                flush_frame()
            frame.append((index, dptr.addr, nbytes))
            frame_bytes += nbytes
        flush_frame()

        if self._costs is not None and sizes:
            costs = self._costs
            copy = pipelined_times(
                [costs.scaled(n) for n in sizes],
                [costs.pcie_d2h_bandwidth, costs.gpucc_bounce_bandwidth,
                 costs.cpu_aead_bandwidth],
                costs.pipeline_chunk_bytes,
                stage_latencies=[costs.dma_setup_latency,
                                 costs.dma_setup_latency,
                                 costs.cpu_aead_setup_latency])
            for _ in range(len(sizes) - frames):
                self._charge(costs.rpc_round_trip_gpucc(), "ipc")
            for nbytes, seconds in zip(sizes, copy):
                self._charge(costs.memcpy_request_overhead_gpucc, "ipc")
                self._charge(costs.gpucc_engine_time(nbytes), "crypto_gpu")
                self._charge(float(seconds), "copy_d2h")
        return results

    def _cuMemcpyDtoH_uncharged(self, dptr: DevPtr, nbytes: int) -> bytes:
        """Scalar chunked download without analytic charges."""
        limit = self._bulk_chunk_limit()
        out = bytearray(nbytes)
        view = memoryview(out)
        offset = 0
        while offset < nbytes:
            chunk = min(nbytes - offset, limit)
            reply = self._request({"op": protocol.OP_MEMCPY_DTOH,
                                   "gpu_va": dptr.addr + offset,
                                   "nbytes": chunk})
            blob_len = int(reply["blob_len"])
            if blob_len != sealed_size(chunk):
                raise ProtocolError("unexpected sealed blob size")
            sealed = self._end.region.read(self._process, BULK_OFFSET,
                                           blob_len)
            view[offset:offset + chunk] = open_blob(
                self._crypto.bulk_suite, sealed,
                associated_data=self._bulk_ad,
                replay_guard=self._crypto.bulk_d2h_guard)
            offset += chunk
        return bytes(out)

    # -- modules / kernels ----------------------------------------------

    def cuModuleLoad(self, kernel_names: Sequence[str]) -> HixModuleHandle:
        reply = self._request({"op": protocol.OP_MODULE_LOAD,
                               "kernels": list(kernel_names)})
        return HixModuleHandle(int(reply["module_id"]), kernel_names)

    def cuLaunchKernel(self, module: HixModuleHandle, kernel_name: str,
                       params: Sequence[ParamValue],
                       compute_seconds: float = 0.0) -> None:
        tracer = _OBS.tracer
        if tracer is None:
            return self._cuLaunchKernel(module, kernel_name, params,
                                        compute_seconds)
        with tracer.span("gpucc.cuLaunchKernel", "gpucc",
                         ctx_id=self._ctx_id, kernel=kernel_name):
            return self._cuLaunchKernel(module, kernel_name, params,
                                        compute_seconds)

    def _cuLaunchKernel(self, module: HixModuleHandle, kernel_name: str,
                        params: Sequence[ParamValue],
                        compute_seconds: float = 0.0) -> None:
        if self._costs is not None:
            self._charge(self._costs.kernel_launch_gpucc, "launch")
        self._request({"op": protocol.OP_LAUNCH,
                       "module_id": module.module_id,
                       "kernel": kernel_name,
                       "params": protocol.encode_params(list(params)),
                       "compute_seconds": compute_seconds})

    def cuLaunchKernelBatch(self, module: HixModuleHandle,
                            launches: Sequence) -> None:
        tracer = _OBS.tracer
        if tracer is None:
            return self._cuLaunchKernelBatch(module, launches)
        with tracer.span("gpucc.cuLaunchKernelBatch", "gpucc",
                         ctx_id=self._ctx_id, items=len(launches)):
            return self._cuLaunchKernelBatch(module, launches)

    def _cuLaunchKernelBatch(self, module: HixModuleHandle,
                             launches: Sequence) -> None:
        if not launches:
            return
        if self._costs is not None:
            for _ in range(len(launches) - 1):
                self._charge(self._costs.rpc_round_trip_gpucc(), "ipc")
            for _ in launches:
                self._charge(self._costs.kernel_launch_gpucc, "launch")
        self._request({"op": protocol.OP_LAUNCH_BATCH, "launches": [
            {"module_id": module.module_id,
             "kernel": str(kernel_name),
             "params": protocol.encode_params(list(params)),
             "compute_seconds": float(compute_seconds)}
            for kernel_name, params, compute_seconds in launches]})

    # -- shutdown -------------------------------------------------------

    def request_shutdown(self) -> None:
        """Ask the driver to stop serving (device scrubs on reset)."""
        try:
            self._request({"op": protocol.OP_SHUTDOWN})
        except DriverError as exc:
            if "no longer trusted" not in str(exc):
                raise


# ---------------------------------------------------------------------------
# Backend registration
# ---------------------------------------------------------------------------

class GpuCcBackend(TeeBackend):
    """On-die engines + certified attestation behind an untrusted driver."""

    name = "gpucc"
    attestation = ("vendor device certificate chain + signed firmware "
                   "measurement at session attestation")
    sealed_path = "bounce-buffer DMA staging + on-die AEAD engine"
    mmio_lockdown = False      # no TGMR; the CC firewall disables BAR1
    termination_protection = False  # killing the driver is plain DoS

    def boot(self, machine, region_size: int = DEFAULT_REGION_SIZE,
             device=None):
        return machine.boot_gpucc(region_size=region_size, device=device)

    def create_session(self, machine, service, name: str = "app",
                       check_identity: bool = True,
                       channel_queue_depth=None):
        return machine.gpucc_session(service, name=name,
                                     check_identity=check_identity,
                                     channel_queue_depth=channel_queue_depth)

    def rpc_round_trip(self, costs) -> float:
        return costs.rpc_round_trip_gpucc()


BACKEND = register(GpuCcBackend())
