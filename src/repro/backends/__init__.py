"""Pluggable TEE backends for the secure GPU stack.

Importing this package registers the built-in backends; select one via
``MachineConfig(backend=...)`` or look it up with :func:`get_backend`.
"""

from repro.backends.base import (
    DEFAULT_REGION_SIZE,
    TeeBackend,
    backend_names,
    get_backend,
    register,
)
from repro.backends.hix import HixBackend
from repro.backends.gpucc import GpuCcBackend

__all__ = [
    "DEFAULT_REGION_SIZE",
    "TeeBackend",
    "backend_names",
    "get_backend",
    "register",
    "HixBackend",
    "GpuCcBackend",
]
