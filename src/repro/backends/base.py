"""The TEE-backend contract: what a sealed GPU stack must provide.

A backend is one point in the CPU-GPU confidential-computing design
space.  It owns four things:

1. **Boot/attest** — bring up the trusted intermediary (HIX's GPU
   enclave; GPU-CC's on-die engines behind an untrusted driver) and
   establish what the user verifies: an enclave measurement chain or a
   device certificate chain.
2. **Key-exchange transcript** — how the per-session key is agreed
   (HIX: 3-party DH among user, GPU enclave and GPU; GPU-CC: 2-party
   DH user <-> device, relayed but never readable by the driver).
3. **Sealed-path framing** — how bulk data crosses the untrusted host
   (HIX: OCB-DMA windows + in-GPU crypto kernels; GPU-CC: bounce-buffer
   DMA + the on-die AEAD engine).
4. **Per-op cost contributions and cleanse/reset semantics** — which
   :class:`~repro.sim.costs.CostModel` fields each op charges, and what
   guarantees deallocation/reset give.

The interface is deliberately thin: backends produce a *service* (the
machine-side stack) and per-tenant *api* objects that expose the same
``cu*`` facade, so everything above — :class:`~repro.serve.ServeEngine`,
the fleet router, evalkit — is backend-agnostic.
"""

from __future__ import annotations

from typing import Dict, Tuple

DEFAULT_REGION_SIZE = 4 * (1 << 20)


class TeeBackend:
    """One TEE design point.  Subclasses are stateless singletons."""

    #: registry key, ``--backend`` value, and cost-model mode string
    name: str = "?"
    #: what the user verifies before trusting the stack
    attestation: str = "?"
    #: how bulk data is framed across the untrusted host
    sealed_path: str = "?"
    #: does the backend lock down GPU MMIO from other ring-0 software?
    mmio_lockdown: bool = False
    #: does killing the service leave the GPU bound (GECS-style)?
    termination_protection: bool = False

    # -- lifecycle ------------------------------------------------------

    def boot(self, machine, region_size: int = DEFAULT_REGION_SIZE,
             device=None):
        """Boot the machine-side service for this backend."""
        raise NotImplementedError

    def create_session(self, machine, service, name: str = "app",
                       check_identity: bool = True,
                       channel_queue_depth=None):
        """Attest and key-exchange one tenant session; return its api."""
        raise NotImplementedError

    # -- cost contributions --------------------------------------------

    def multiuser_efficiency(self, costs) -> float:
        """Derate of the backend's GPU-side crypto stage under sharing."""
        return costs.aead_multiuser_efficiency(self.name)

    def launch_overhead(self, costs) -> float:
        return costs.launch_overhead(self.name)

    def rpc_round_trip(self, costs) -> float:
        raise NotImplementedError

    # -- identity -------------------------------------------------------

    def fingerprint(self) -> Tuple[str, str]:
        """Joined into serve memo tokens: cached timing splits must
        never be replayed across backends."""
        return ("backend", self.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TeeBackend {self.name}>"


_REGISTRY: Dict[str, TeeBackend] = {}


def register(backend: TeeBackend) -> TeeBackend:
    _REGISTRY[backend.name] = backend
    return backend


def get_backend(name: str) -> TeeBackend:
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(
            f"unknown TEE backend {name!r}; known backends: {known}"
        ) from None


def backend_names() -> Tuple[str, ...]:
    return tuple(sorted(_REGISTRY))
