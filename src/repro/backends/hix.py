"""The HIX-SGX backend: the paper's design, behind the backend contract.

This is a pure selector over the existing HIX stack — the GPU-enclave
service (:mod:`repro.core.gpu_enclave`), the user runtime
(:mod:`repro.core.runtime`) and the machine plumbing in
:mod:`repro.system` are untouched, so a machine configured with
``backend="hix"`` is bit-identical in simulated time to the
pre-refactor code path.
"""

from __future__ import annotations

from repro.backends.base import DEFAULT_REGION_SIZE, TeeBackend, register


class HixBackend(TeeBackend):
    """SGX GPU enclave + OCB-DMA windows + in-GPU crypto kernels."""

    name = "hix"
    attestation = ("SGX local report chain + GPU BIOS measurement at "
                   "enclave init")
    sealed_path = "OCB-DMA window remapping + in-GPU AEAD kernels"
    mmio_lockdown = True
    termination_protection = True

    def boot(self, machine, region_size: int = DEFAULT_REGION_SIZE,
             device=None):
        return machine.boot_hix(region_size=region_size, device=device)

    def create_session(self, machine, service, name: str = "app",
                       check_identity: bool = True,
                       channel_queue_depth=None):
        return machine.hix_session(service, name=name,
                                   check_identity=check_identity,
                                   channel_queue_depth=channel_queue_depth)

    def rpc_round_trip(self, costs) -> float:
        return costs.rpc_round_trip()


BACKEND = register(HixBackend())
