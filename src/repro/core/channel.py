"""Untrusted inter-enclave media: message queues and shared memory.

Section 4.4.1: "The GPU enclave uses two communication channels with
each user enclave; a message queue and shared memory.  The message queue
is used for communication synchronization, and the shared memory is for
the actual encrypted data transmission."

Both media are OS-owned: the queue is kernel state the adversary can
inspect, reorder, duplicate, or forge, and the shared region is ordinary
DRAM it can read and corrupt.  Security comes solely from the sealed
payloads inside.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional

from repro.errors import ProtocolError, QueueFullError
from repro.hw.phys_mem import PAGE_SIZE
from repro.osmodel.kernel import Kernel
from repro.osmodel.process import Process

# Shared-region layout.
REQUEST_OFFSET = 0x0000
REQUEST_AREA = 0x8000
REPLY_OFFSET = REQUEST_AREA
REPLY_AREA = 0x8000
BULK_OFFSET = REQUEST_AREA + REPLY_AREA


@dataclass(frozen=True)
class Notification:
    """A queue entry: plaintext metadata only (offset/length of a blob)."""

    kind: str
    offset: int
    length: int


class MessageQueue:
    """Kernel-mediated notification queue (fully attacker-visible).

    Real kernel message queues have a bounded backlog; *capacity* models
    it.  An enqueue on a full queue raises :class:`QueueFullError` — a
    first-class :class:`ProtocolError` subclass the serving layer
    translates into backpressure rather than silently dropping or
    unboundedly buffering notifications.  ``capacity=None`` (the
    default) keeps the historical unbounded behaviour.
    """

    def __init__(self, name: str, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("queue capacity must be >= 1 (or None)")
        self.name = name
        self.capacity = capacity
        self.entries: Deque[Notification] = deque()
        self.sent = 0
        self.rejected = 0

    def send(self, kind: str, offset: int, length: int) -> None:
        if self.capacity is not None and len(self.entries) >= self.capacity:
            self.rejected += 1
            raise QueueFullError(
                f"queue {self.name!r} full ({self.capacity} entries)")
        self.entries.append(Notification(kind, offset, length))
        self.sent += 1

    def recv(self) -> Notification:
        if not self.entries:
            raise ProtocolError(f"queue {self.name!r} empty")
        return self.entries.popleft()

    def __len__(self) -> int:
        return len(self.entries)


class SharedMemoryRegion:
    """Physically-contiguous DRAM shared by the two enclaves (and the OS)."""

    def __init__(self, kernel: Kernel, size: int) -> None:
        if size % PAGE_SIZE:
            raise ValueError("shared region size must be page-aligned")
        self._kernel = kernel
        self.size = size
        npages = size // PAGE_SIZE
        self.paddr = kernel.frames.alloc_contiguous(npages)
        self._mappings: Dict[int, int] = {}  # pid -> vaddr

    def attach(self, process: Process) -> int:
        """Map the region into *process*; returns its local vaddr."""
        vaddr = self._mappings.get(process.pid)
        if vaddr is None:
            vaddr = self._kernel.map_physical(process, self.paddr, self.size)
            self._mappings[process.pid] = vaddr
        return vaddr

    def write(self, process: Process, offset: int, data: bytes,
              enclave_mode: bool = False) -> None:
        if offset + len(data) > self.size:
            raise ProtocolError("write overruns the shared region")
        vaddr = self.attach(process)
        self._kernel.cpu_write(process, vaddr + offset, data,
                               enclave_mode=enclave_mode)

    def read(self, process: Process, offset: int, nbytes: int,
             enclave_mode: bool = False) -> bytes:
        if offset + nbytes > self.size:
            raise ProtocolError("read overruns the shared region")
        vaddr = self.attach(process)
        return self._kernel.cpu_read(process, vaddr + offset, nbytes,
                                     enclave_mode=enclave_mode)

    @property
    def bulk_capacity(self) -> int:
        return self.size - BULK_OFFSET


@dataclass
class ChannelEnd:
    """Everything one party needs to use a user<->GPU-enclave channel."""

    region: SharedMemoryRegion
    to_service: MessageQueue     # user -> GPU enclave notifications
    to_user: MessageQueue        # GPU enclave -> user notifications
    user_process: Process
    session_id: Optional[int] = None
