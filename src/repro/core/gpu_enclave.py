"""The GPU enclave: the relocated, trusted GPU driver (paper Section 4.2).

One user-space process hosts an SGX enclave containing the Gdev-derived
driver.  At boot it:

1. loads and initializes its enclave (measured, attestable),
2. has the benign kernel stub map the GPU's MMIO regions,
3. executes ``EGCREATE`` (binding the GPU, engaging MMIO lockdown) and
   ``EGADD`` for every MMIO page (populating the TGMR),
4. reads the GPU BIOS through the expansion ROM and verifies it against
   the vendor-published hash (Section 4.2.2),
5. resets the GPU to purge any pre-existing state.

After boot it is the *sole* software able to touch the GPU, and serves
user enclaves over the untrusted channel: attested key-exchange hellos,
then sealed requests (malloc/free/memcpy/module-load/launch/teardown),
maintaining one GPU context and one session key per user (Section 4.5).
"""

from __future__ import annotations

import itertools
import logging
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core import protocol
from repro.core.channel import (
    BULK_OFFSET,
    ChannelEnd,
    MessageQueue,
    REPLY_OFFSET,
    REQUEST_OFFSET,
    SharedMemoryRegion,
)
from repro.core.key_exchange import (
    DiffieHellman,
    SessionCrypto,
    bind_report_data,
    build_session_crypto,
    check_binding,
    derive_key,
    dh_bytes_to_int,
    int_to_dh_bytes,
)
from repro.crypto.blob import open_blob, seal_blob, sealed_size
from repro.errors import (
    AttestationError,
    DriverError,
    GpuUnavailable,
    ProtocolError,
)
from repro.gdev.driver import GdevDriver, GdevContextHandle, GdevModule
from repro.gpu.bios import bios_hash, is_valid_rom
from repro.gpu.commands import CommandOpcode, encode_command
from repro.gpu.device import SimGpu
from repro.gpu.module import CubinImage
from repro.gpu.regs import REG_RESET, RESET_MAGIC, ROM_SIZE
from repro.hw.phys_mem import PAGE_SIZE
from repro.osmodel.driver_stub import map_gpu_mmio
from repro.osmodel.kernel import Kernel
from repro.osmodel.process import Process
from repro.pcie.root_complex import RootComplex
from repro.sgx.attestation import verify_local_report
from repro.sgx.enclave import EnclaveImage
from repro.sgx.instructions import SgxUnit

#: The GPU enclave's code identity ("provided by the GPU vendor", §5.5).
GPU_ENCLAVE_CODE = (b"HIX GPU enclave driver v1.0 -- Gdev-based trusted "
                    b"CUDA runtime relocated from the OS kernel")

CRYPTO_KERNELS = ["hix.aead_decrypt", "hix.aead_encrypt",
                  "hix.aead_decrypt_scatter", "hix.aead_encrypt_gather"]

logger = logging.getLogger(__name__)


def gpu_enclave_image() -> EnclaveImage:
    """The loadable (and measurable) GPU enclave image."""
    return EnclaveImage.from_code("gpu-enclave", GPU_ENCLAVE_CODE,
                                  heap_pages=8)


@dataclass
class Session:
    """Service-side state for one connected user enclave."""

    session_id: int
    user_measurement: bytes
    crypto: SessionCrypto
    ctx: GdevContextHandle
    end: ChannelEnd
    crypto_module: GdevModule
    modules: Dict[int, GdevModule] = field(default_factory=dict)
    module_ids: "itertools.count" = field(default_factory=lambda: itertools.count(1))
    closed: bool = False


class GpuEnclaveService:
    """The GPU enclave process and its request-serving loop."""

    def __init__(self, kernel: Kernel, sgx: SgxUnit,
                 root_complex: RootComplex, gpu: SimGpu,
                 expected_bios_hash: bytes,
                 suite_name: str = "fast-auth",
                 region_size: int = 4 << 20) -> None:
        self._kernel = kernel
        self._sgx = sgx
        self._root_complex = root_complex
        self._gpu = gpu
        self._expected_bios_hash = expected_bios_hash
        self._suite_name = suite_name
        self._region_size = region_size

        self.process: Optional[Process] = None
        self.enclave = None
        self.driver: Optional[GdevDriver] = None
        self.sessions: Dict[int, Session] = {}
        self.alive = False
        self.bios_measurement: Optional[bytes] = None
        self._regions = None

    # ------------------------------------------------------------------ boot

    def boot(self) -> "GpuEnclaveService":
        """Run the full secure-initialization sequence (Sections 4.2-4.3)."""
        self.process = self._kernel.create_process("gpu-enclave")
        self.enclave = self._kernel.load_enclave(self.process,
                                                 gpu_enclave_image())
        # Benign kernel service: assign virtual addresses for the MMIO.
        self._regions = map_gpu_mmio(self._kernel, self._root_complex,
                                     self._gpu.bdf, self.process)
        # EGCREATE: bind the GPU, freeze PCIe routing (MMIO lockdown).
        self._sgx.egcreate(self.enclave.enclave_id, self._gpu.bdf)
        # EGADD: register every MMIO page in the TGMR.
        for region in self._regions.values():
            self._sgx.egadd(self.enclave.enclave_id, region.vaddr,
                            region.paddr, npages=region.size // PAGE_SIZE)
        # Measure the GPU BIOS through the (now exclusive) MMIO path.
        self.driver = GdevDriver(self._kernel, self._root_complex, self._gpu,
                                 process=self.process, enclave_mode=True,
                                 regions=self._regions, costs=None)
        rom = self.driver.channel.read_expansion_rom(ROM_SIZE)
        if not is_valid_rom(rom):
            raise AttestationError("GPU expansion ROM is structurally invalid")
        self.bios_measurement = bios_hash(rom)
        if self.bios_measurement != self._expected_bios_hash:
            raise AttestationError(
                "GPU BIOS failed measurement: device firmware was modified "
                "before GPU-enclave initialization")
        # Reset the GPU to purge any pre-existing (potentially malicious)
        # state, then rebuild driver bookkeeping over the clean device.
        self.driver.channel.reg_write(REG_RESET, RESET_MAGIC)
        self.driver = GdevDriver(self._kernel, self._root_complex, self._gpu,
                                 process=self.process, enclave_mode=True,
                                 regions=self._regions, costs=None)
        self.alive = True
        logger.info(
            "GPU enclave up: device=%s enclave=%d tgmr_pages=%d lockdown=%s",
            self._gpu.bdf, self.enclave.enclave_id,
            len(self._sgx.hix.tgmr_entries),
            self._root_complex.lockdown_active_for(str(self._gpu.bdf)))
        return self

    @property
    def measurement(self) -> bytes:
        return self.enclave.measurement

    # ------------------------------------------------------- channel plumbing

    def open_channel(self, user_process: Process,
                     queue_depth: Optional[int] = None) -> ChannelEnd:
        """Provision the untrusted media for one user enclave.

        *queue_depth* bounds both notification queues; a full queue
        raises :class:`~repro.errors.QueueFullError` on send, which the
        serving layer surfaces as backpressure.
        """
        region = SharedMemoryRegion(self._kernel, self._region_size)
        region.attach(user_process)
        region.attach(self.process)
        return ChannelEnd(
            region=region,
            to_service=MessageQueue(f"to-service:{user_process.pid}",
                                    capacity=queue_depth),
            to_user=MessageQueue(f"to-user:{user_process.pid}",
                                 capacity=queue_depth),
            user_process=user_process,
        )

    def _check_alive(self) -> None:
        if not self.alive:
            raise GpuUnavailable("GPU enclave is not running")

    # --------------------------------------------------- session establishment

    def handle_hello(self, end: ChannelEnd) -> None:
        """Process a hello: verify the user's report, run the 3-party DH."""
        self._check_alive()
        note = end.to_service.recv()
        if note.kind != "hello":
            raise ProtocolError(f"expected hello, got {note.kind!r}")
        raw = end.region.read(self.process, note.offset, note.length,
                              enclave_mode=True)
        hello = protocol.decode_message(raw)
        report = _report_from_wire(hello["report"])
        # Local attestation: only a genuine enclave on this platform can
        # produce a report MACed for *our* measurement.
        verify_local_report(self._sgx, self.enclave.enclave_id, report)
        a_bytes = bytes.fromhex(hello["dh_a"])
        check_binding(report.report_data, a_bytes)
        a_value = dh_bytes_to_int(a_bytes)

        # Create this user's GPU context and run the GPU leg of the DH.
        ctx = self.driver.create_context(end.user_process)
        dh_e = DiffieHellman(seed=b"gpu-enclave-%d" % ctx.ctx_id)
        b_value = dh_e.raise_value(a_value)
        resp_va = self.driver.malloc(ctx, 512)
        self.driver.channel.submit([encode_command(
            CommandOpcode.KEY_EXCHANGE, ctx.ctx_id, (resp_va,),
            blob=int_to_dh_bytes(a_value) + int_to_dh_bytes(b_value))])
        reply_raw = self.driver.channel.aperture_read(
            self.driver.vram_pa_of(ctx, resp_va), 512)
        self.driver.free(ctx, resp_va, cleanse=True)
        c_value = dh_bytes_to_int(reply_raw[:256])    # g^g
        d_value = dh_bytes_to_int(reply_raw[256:])    # g^(ug)
        session_key = derive_key(dh_e.raise_value(d_value))
        e_value = dh_e.raise_value(c_value)           # g^(ge), for the user

        crypto = build_session_crypto(session_key, self._suite_name)
        crypto_module = self.driver.load_module(
            ctx, CubinImage(list(CRYPTO_KERNELS)), via_mmio=True)
        session = Session(session_id=end.user_process.pid,
                          user_measurement=report.measurement,
                          crypto=crypto, ctx=ctx, end=end,
                          crypto_module=crypto_module)
        self.sessions[session.session_id] = session
        end.session_id = session.session_id
        logger.info("session %d established: user measurement %s..., ctx %d",
                    session.session_id, report.measurement.hex()[:16],
                    ctx.ctx_id)

        e_bytes = int_to_dh_bytes(e_value)
        reply_report = self._sgx.ereport(
            self.enclave.enclave_id, report.measurement,
            bind_report_data(e_bytes, a_bytes))
        reply = protocol.encode_message({
            "report": _report_to_wire(reply_report),
            "dh_e": e_bytes.hex(),
            "ctx_id": ctx.ctx_id,
        })
        end.region.write(self.process, REPLY_OFFSET, reply, enclave_mode=True)
        end.to_user.send("hello-ack", REPLY_OFFSET, len(reply))

    # ----------------------------------------------------------- request loop

    def poll(self, end: ChannelEnd) -> None:
        """Serve one pending request notification on *end*."""
        self._check_alive()
        session = self.sessions.get(end.session_id)
        if session is None or session.closed:
            raise GpuUnavailable("no live session on this channel")
        note = end.to_service.recv()
        if note.kind != "request":
            raise ProtocolError(f"expected request, got {note.kind!r}")
        sealed = end.region.read(self.process, note.offset, note.length,
                                 enclave_mode=True)
        raw = open_blob(session.crypto.request_suite, sealed,
                        associated_data=protocol.REQUEST_AAD,
                        replay_guard=session.crypto.request_guard)
        request = protocol.decode_message(raw)
        try:
            op = protocol.check_request(request)
            result = self._dispatch(session, op, request)
        except DriverError as exc:
            # Request-level failures — unknown ops, allocation, bad
            # pointers, device faults — are reported back to the user
            # enclave as structured sealed error replies (the session
            # stays live); authentication failures above still raise —
            # those are attacks, not requests.
            result = protocol.error_reply(exc)
        reply = seal_blob(session.crypto.reply_suite,
                          session.crypto.reply_nonces,
                          protocol.encode_message(result),
                          associated_data=protocol.REPLY_AAD)
        end.region.write(self.process, REPLY_OFFSET, reply, enclave_mode=True)
        end.to_user.send("reply", REPLY_OFFSET, len(reply))

    def _dispatch(self, session: Session, op: str, request: dict) -> dict:
        if op == protocol.OP_MALLOC:
            gpu_va = self.driver.malloc(session.ctx, int(request["nbytes"]))
            return {"ok": True, "gpu_va": gpu_va}
        if op == protocol.OP_FREE:
            # HIX cleanses deallocated device memory (Section 4.5).
            self.driver.free(session.ctx, int(request["gpu_va"]), cleanse=True)
            return {"ok": True}
        if op == protocol.OP_MEMCPY_HTOD:
            return self._memcpy_htod(session, int(request["gpu_va"]),
                                     int(request["blob_len"]))
        if op == protocol.OP_MEMCPY_DTOH:
            return self._memcpy_dtoh(session, int(request["gpu_va"]),
                                     int(request["nbytes"]))
        if op == protocol.OP_MEMCPY_HTOD_BATCH:
            return self._memcpy_htod_batch(
                session, [int(va) for va in request["gpu_vas"]],
                [int(n) for n in request["lengths"]],
                int(request["blob_len"]))
        if op == protocol.OP_MEMCPY_DTOH_BATCH:
            return self._memcpy_dtoh_batch(
                session, [int(va) for va in request["gpu_vas"]],
                [int(n) for n in request["lengths"]])
        if op == protocol.OP_MODULE_LOAD:
            module = self.driver.load_module(
                session.ctx, CubinImage([str(n) for n in request["kernels"]]),
                via_mmio=True)
            module_id = next(session.module_ids)
            session.modules[module_id] = module
            return {"ok": True, "module_id": module_id}
        if op == protocol.OP_LAUNCH:
            module = session.modules.get(int(request["module_id"]))
            if module is None:
                raise ProtocolError("launch references unknown module")
            self.driver.launch(
                session.ctx, module, str(request["kernel"]),
                protocol.decode_params(request["params"]),
                compute_seconds=float(request.get("compute_seconds", 0.0)),
                via_mmio=True)
            return {"ok": True}
        if op == protocol.OP_LAUNCH_BATCH:
            return self._launch_batch(session, request["launches"])
        if op == protocol.OP_CTX_DESTROY:
            self._close_session(session)
            return {"ok": True}
        if op == protocol.OP_SHUTDOWN:
            self.graceful_shutdown()
            return {"ok": True}
        raise ProtocolError(f"unhandled op {op!r}")  # pragma: no cover

    # ----------------------------------------------- single-copy secure memcpy

    def _memcpy_htod(self, session: Session, gpu_va: int,
                     blob_len: int) -> dict:
        """Shared memory -> GPU (ciphertext), then in-GPU decrypt (§4.4.2)."""
        staging_va = self.driver.malloc(session.ctx, blob_len)
        self.driver.channel.submit([encode_command(
            CommandOpcode.MEMCPY_H2D, session.ctx.ctx_id,
            (session.end.region.paddr + BULK_OFFSET, staging_va, blob_len))])
        self.driver.launch(
            session.ctx, session.crypto_module, "hix.aead_decrypt",
            [_ptr(staging_va), blob_len, _ptr(gpu_va)], via_mmio=True)
        self.driver.free(session.ctx, staging_va)
        return {"ok": True, "plaintext_len": blob_len - _blob_header_len()}

    def _memcpy_dtoh(self, session: Session, gpu_va: int,
                     nbytes: int) -> dict:
        """In-GPU encrypt, then GPU -> shared memory (ciphertext)."""
        blob_len = sealed_size(nbytes)
        staging_va = self.driver.malloc(session.ctx, 8 + blob_len)
        self.driver.launch(
            session.ctx, session.crypto_module, "hix.aead_encrypt",
            [_ptr(gpu_va), nbytes, _ptr(staging_va)], via_mmio=True)
        self.driver.channel.submit([encode_command(
            CommandOpcode.MEMCPY_D2H, session.ctx.ctx_id,
            (staging_va + 8, session.end.region.paddr + BULK_OFFSET,
             blob_len))])
        self.driver.free(session.ctx, staging_va, cleanse=True)
        return {"ok": True, "blob_len": blob_len}

    # ------------------------------------------- batched single-copy transfers

    def _memcpy_htod_batch(self, session: Session, gpu_vas: list,
                           lengths: list, blob_len: int) -> dict:
        """One DMA + one in-GPU open for a whole batch of uploads.

        The fused frame in shared memory seals the concatenation of the
        batch's chunks under one nonce/tag; the scatter kernel
        authenticates it once and distributes the plaintext chunks to
        their per-item destinations.
        """
        if len(gpu_vas) != len(lengths) or not gpu_vas:
            raise ProtocolError("batch gpu_vas/lengths tables do not match")
        staging_va = self.driver.malloc(session.ctx, blob_len)
        self.driver.channel.submit([encode_command(
            CommandOpcode.MEMCPY_H2D, session.ctx.ctx_id,
            (session.end.region.paddr + BULK_OFFSET, staging_va, blob_len))])
        params = [_ptr(staging_va), blob_len, len(gpu_vas)]
        for gpu_va, length in zip(gpu_vas, lengths):
            params.append(_ptr(gpu_va))
            params.append(length)
        self.driver.launch(
            session.ctx, session.crypto_module, "hix.aead_decrypt_scatter",
            params, via_mmio=True)
        self.driver.free(session.ctx, staging_va)
        return {"ok": True, "plaintext_len": sum(lengths)}

    def _memcpy_dtoh_batch(self, session: Session, gpu_vas: list,
                           lengths: list) -> dict:
        """One in-GPU gather-and-seal + one DMA for a batch of downloads."""
        if len(gpu_vas) != len(lengths) or not gpu_vas:
            raise ProtocolError("batch gpu_vas/lengths tables do not match")
        blob_len = sealed_size(sum(lengths))
        staging_va = self.driver.malloc(session.ctx, 8 + blob_len)
        params = [_ptr(staging_va), len(gpu_vas)]
        for gpu_va, length in zip(gpu_vas, lengths):
            params.append(_ptr(gpu_va))
            params.append(length)
        self.driver.launch(
            session.ctx, session.crypto_module, "hix.aead_encrypt_gather",
            params, via_mmio=True)
        self.driver.channel.submit([encode_command(
            CommandOpcode.MEMCPY_D2H, session.ctx.ctx_id,
            (staging_va + 8, session.end.region.paddr + BULK_OFFSET,
             blob_len))])
        self.driver.free(session.ctx, staging_va, cleanse=True)
        return {"ok": True, "blob_len": blob_len}

    def _launch_batch(self, session: Session, launches: list) -> dict:
        """Run several launches announced by one sealed request."""
        if not isinstance(launches, list) or not launches:
            raise ProtocolError("launch batch must be a non-empty list")
        for item in launches:
            module = session.modules.get(int(item["module_id"]))
            if module is None:
                raise ProtocolError("launch references unknown module")
            self.driver.launch(
                session.ctx, module, str(item["kernel"]),
                protocol.decode_params(item["params"]),
                compute_seconds=float(item.get("compute_seconds", 0.0)),
                via_mmio=True)
        return {"ok": True}

    # ------------------------------------------------------------- termination

    def _close_session(self, session: Session) -> None:
        self.driver.destroy_context(session.ctx, cleanse=True)
        session.closed = True
        self.sessions.pop(session.session_id, None)

    def graceful_shutdown(self) -> None:
        """Abort work, cleanse the GPU, return it to the OS (Section 4.2.3)."""
        for session in list(self.sessions.values()):
            self._close_session(session)
            session.end.to_user.send("gpu-untrusted", 0, 0)
        self.driver.channel.reg_write(REG_RESET, RESET_MAGIC)
        self._sgx.egdestroy(self.enclave.enclave_id)
        self.alive = False


def _ptr(gpu_va: int):
    from repro.gpu.module import DevPtr
    return DevPtr(gpu_va)


def _blob_header_len() -> int:
    from repro.crypto.blob import HEADER_LEN
    return HEADER_LEN


# -- report (de)serialization over the untrusted channel ----------------------

def _report_to_wire(report) -> dict:
    return {
        "measurement": report.measurement.hex(),
        "enclave_id": report.enclave_id,
        "report_data": report.report_data.hex(),
        "is_gpu_enclave": report.is_gpu_enclave,
        "routing_measurement": report.routing_measurement.hex(),
        "mac": report.mac.hex(),
    }


def _report_from_wire(wire: dict):
    from repro.sgx.attestation import LocalReport
    try:
        return LocalReport(
            measurement=bytes.fromhex(wire["measurement"]),
            enclave_id=int(wire["enclave_id"]),
            report_data=bytes.fromhex(wire["report_data"]),
            is_gpu_enclave=bool(wire["is_gpu_enclave"]),
            routing_measurement=bytes.fromhex(wire["routing_measurement"]),
            mac=bytes.fromhex(wire["mac"]),
        )
    except (KeyError, ValueError, TypeError) as exc:
        raise ProtocolError(f"malformed report on wire: {exc}") from exc
