"""Session establishment: local attestation + three-party Diffie-Hellman.

Section 4.4.1: "A user enclave and the GPU enclave perform SGX-supported
local attestation to verify each other.  Once they establish the trust
through attestation, they create a shared symmetric key by using the
Diffie-Hellman key exchange protocol.  As the Diffie-Hellman key
exchange can be done among multiple parties, the GPU also participates
in this key setup procedure and generates a shared symmetric key."

Roles and values (generator g, private exponents u/e/g for user enclave,
GPU enclave, GPU):

1. user:        A = g^u                        -> GPU enclave (attested)
2. GPU enclave: B = A^e = g^(ue), forwards (A, B) to the GPU over the
   trusted MMIO command path.
3. GPU:         session key K = KDF(B^g = g^(ueg)); replies C = g^g and
   D = A^g = g^(ug) through device memory.
4. GPU enclave: K = KDF(D^e); sends E = C^e = g^(ge) to the user
   (attested).
5. user:        K = KDF(E^u).

All three parties then derive the same request/reply/bulk subkeys from K
via HKDF (:func:`repro.crypto.kdf.derive_channel_keys`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict

from repro.crypto.dh import DiffieHellman, derive_key
from repro.crypto.kdf import derive_channel_keys
from repro.crypto.nonce import NonceSequence, ReplayGuard
from repro.crypto.suite import AeadSuite, make_suite
from repro.core import protocol
from repro.errors import AttestationError


@dataclass
class SessionCrypto:
    """One party's derived cryptographic state for a session."""

    session_key: bytes
    request_suite: AeadSuite
    reply_suite: AeadSuite
    bulk_suite: AeadSuite
    request_nonces: NonceSequence
    reply_nonces: NonceSequence
    bulk_h2d_nonces: NonceSequence
    bulk_d2h_nonces: NonceSequence
    request_guard: ReplayGuard
    reply_guard: ReplayGuard
    bulk_h2d_guard: ReplayGuard
    bulk_d2h_guard: ReplayGuard


def build_session_crypto(session_key: bytes, suite_name: str) -> SessionCrypto:
    """Expand a session key into suites, nonces, and replay guards."""
    keys: Dict[str, bytes] = derive_channel_keys(session_key)
    return SessionCrypto(
        session_key=session_key,
        request_suite=make_suite(suite_name, keys["request"]),
        reply_suite=make_suite(suite_name, keys["reply"]),
        bulk_suite=make_suite(suite_name, keys["bulk"]),
        request_nonces=NonceSequence(protocol.CH_REQUEST),
        reply_nonces=NonceSequence(protocol.CH_REPLY),
        bulk_h2d_nonces=NonceSequence(protocol.CH_BULK_H2D),
        bulk_d2h_nonces=NonceSequence(protocol.CH_BULK_D2H),
        request_guard=ReplayGuard(protocol.CH_REQUEST),
        reply_guard=ReplayGuard(protocol.CH_REPLY),
        bulk_h2d_guard=ReplayGuard(protocol.CH_BULK_H2D),
        bulk_d2h_guard=ReplayGuard(protocol.CH_BULK_D2H),
    )


def bind_report_data(*values: bytes) -> bytes:
    """Hash DH public values into attestation report_data (anti-MITM)."""
    digest = hashlib.sha256()
    for value in values:
        digest.update(len(value).to_bytes(8, "big"))
        digest.update(value)
    return digest.digest()


def check_binding(report_data: bytes, *values: bytes) -> None:
    if report_data != bind_report_data(*values):
        raise AttestationError(
            "attestation report does not bind the exchanged DH values "
            "(possible man-in-the-middle)")


def int_to_dh_bytes(value: int) -> bytes:
    return value.to_bytes(256, "big")


def dh_bytes_to_int(raw: bytes) -> int:
    if len(raw) != 256:
        raise AttestationError("DH public value must be 256 bytes")
    return int.from_bytes(raw, "big")


__all__ = [
    "SessionCrypto",
    "build_session_crypto",
    "bind_report_data",
    "check_binding",
    "int_to_dh_bytes",
    "dh_bytes_to_int",
    "DiffieHellman",
    "derive_key",
]
