"""Trusted user runtime library (paper Section 4.4).

"HIX provides the trusted user runtime library for applications, which
runs in each application enclave.  This library consists of GPU APIs
such as memory copy or GPU kernel launch operation, the security module
containing key initialization and user data encryption, and the
communication module for data transfers."

:class:`HixApi` exposes the same CUDA-driver-API facade as the baseline
:class:`~repro.gdev.api.GdevApi`, so application code runs unchanged on
either stack.  Internally every operation crosses the untrusted channel
as a sealed request, bulk data takes the single-copy pipelined path of
Section 4.4.2, and simulated time is charged analytically from the cost
model (pipelined encrypt-transfer overlap, in-GPU crypto kernels,
message-queue hops), matching the prototype's measurement decomposition.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.core import protocol
from repro.core.channel import BULK_OFFSET, ChannelEnd, REQUEST_OFFSET
from repro.core.gpu_enclave import (
    GpuEnclaveService,
    _report_from_wire,
    _report_to_wire,
)
from repro.core.key_exchange import (
    DiffieHellman,
    SessionCrypto,
    bind_report_data,
    build_session_crypto,
    check_binding,
    derive_key,
    dh_bytes_to_int,
    int_to_dh_bytes,
)
from repro.crypto.blob import (
    HEADER_LEN,
    open_blob,
    seal_blob,
    seal_blob_into,
    sealed_size,
)
from repro.errors import (
    AttestationError,
    DriverError,
    ProtocolError,
    RequestRejected,
)
from repro.gpu.module import DevPtr, ParamValue
from repro.obs.tracer import STATE as _OBS
from repro.osmodel.kernel import Kernel
from repro.osmodel.process import Process
from repro.sim.clock import SimClock
from repro.sim.costs import CostModel
from repro.sim.pipeline import pipelined_time

HostBuffer = Union[bytes, bytearray, np.ndarray]


def _as_buffer(data: HostBuffer) -> memoryview:
    """A flat byte view of the caller's buffer — zero-copy when possible.

    C-contiguous numpy arrays and bytes-like objects are viewed in
    place; only non-contiguous arrays pay a copy.
    """
    if isinstance(data, np.ndarray):
        if not data.flags.c_contiguous:
            data = np.ascontiguousarray(data)
        return memoryview(data).cast("B")
    view = memoryview(data)
    if view.ndim != 1 or view.format not in ("B", "b", "c"):
        view = view.cast("B")
    return view


class HixModuleHandle:
    """Client-side handle to a module resident in the user's GPU context."""

    def __init__(self, module_id: int, kernel_names: Sequence[str]) -> None:
        self.module_id = module_id
        self.kernel_names = list(kernel_names)


class HixApi:
    """The trusted user runtime: CUDA-like API over the secure channel."""

    secure = True

    def __init__(self, kernel: Kernel, process: Process,
                 service: GpuEnclaveService, clock: Optional[SimClock] = None,
                 costs: Optional[CostModel] = None,
                 expected_gpu_enclave_measurement: Optional[bytes] = None,
                 suite_name: str = "fast-auth",
                 channel_queue_depth: Optional[int] = None) -> None:
        self._kernel = kernel
        self._process = process
        self._service = service
        self._clock = clock
        self._costs = costs
        self._suite_name = suite_name
        self._channel_queue_depth = channel_queue_depth
        self._expected_measurement = expected_gpu_enclave_measurement
        self._end: Optional[ChannelEnd] = None
        self._crypto: Optional[SessionCrypto] = None
        self._ctx_id: Optional[int] = None
        self._seal_buf: Optional[bytearray] = None  # reused per bulk chunk
        self.user_enclave = process.enclave

    # -- timing helpers ----------------------------------------------------------

    def _charge(self, seconds: float, category: str) -> None:
        if self._clock is not None and seconds > 0.0:
            self._clock.advance(seconds, category)

    def _rpc_overhead(self) -> None:
        if self._costs is None:
            return
        self._charge(self._costs.rpc_round_trip(), "ipc")

    # -- lifecycle ------------------------------------------------------------------

    def __enter__(self) -> "HixApi":
        """Context-manager form: attested session in, teardown on exit."""
        if self._end is None:
            self.cuCtxCreate()
        return self

    def __exit__(self, *exc) -> None:
        try:
            self.cuCtxDestroy()
        except DriverError:
            # The service may already be gone (e.g. graceful shutdown).
            pass

    def cuInit(self) -> "HixApi":
        return self

    def cuCtxCreate(self) -> "HixApi":
        """Attested session setup + 3-party key exchange (Section 4.4.1)."""
        tracer = _OBS.tracer
        if tracer is None:
            return self._cuCtxCreate()
        with tracer.span("hix.cuCtxCreate", "hix", pid=self._process.pid):
            return self._cuCtxCreate()

    def _cuCtxCreate(self) -> "HixApi":
        if self._end is not None:
            raise DriverError("context already created")
        if self._costs is not None:
            self._charge(self._costs.hix_task_init, "task_init")
            self._charge(self._costs.session_setup, "session_setup")
        end = self._service.open_channel(
            self._process, queue_depth=self._channel_queue_depth)
        user_eid = self._process.enclave.enclave_id
        sgx = self._kernel.sgx

        dh_u = DiffieHellman(seed=b"user-%d" % self._process.pid)
        a_bytes = int_to_dh_bytes(dh_u.public_value)
        report = sgx.ereport(user_eid, self._service.measurement,
                             bind_report_data(a_bytes))
        hello = protocol.encode_message({
            "report": _report_to_wire(report),
            "dh_a": a_bytes.hex(),
        })
        end.region.write(self._process, REQUEST_OFFSET, hello,
                         enclave_mode=True)
        end.to_service.send("hello", REQUEST_OFFSET, len(hello))
        self._service.handle_hello(end)

        note = end.to_user.recv()
        if note.kind != "hello-ack":
            raise ProtocolError(f"expected hello-ack, got {note.kind!r}")
        raw = end.region.read(self._process, note.offset, note.length,
                              enclave_mode=True)
        ack = protocol.decode_message(raw)
        reply_report = _report_from_wire(ack["report"])
        # Mutual local attestation: verify the GPU enclave's report, its
        # identity, and that it really is a GPU enclave whose PCIe routing
        # was measured at EGCREATE (Sections 4.4.1, 5.5).
        from repro.sgx.attestation import verify_local_report
        verify_local_report(sgx, user_eid, reply_report)
        if not reply_report.is_gpu_enclave:
            raise AttestationError("peer is not a GPU enclave")
        if (self._expected_measurement is not None
                and reply_report.measurement != self._expected_measurement):
            raise AttestationError(
                "GPU enclave measurement does not match the expected "
                "(vendor-published) identity")
        e_bytes = bytes.fromhex(ack["dh_e"])
        check_binding(reply_report.report_data, e_bytes, a_bytes)
        session_key = derive_key(dh_u.raise_value(dh_bytes_to_int(e_bytes)))
        self._crypto = build_session_crypto(session_key, self._suite_name)
        self._ctx_id = int(ack["ctx_id"])
        self._end = end
        return self

    def cuCtxDestroy(self) -> None:
        if self._end is None:
            return
        tracer = _OBS.tracer
        if tracer is None:
            return self._cuCtxDestroy()
        with tracer.span("hix.cuCtxDestroy", "hix", ctx_id=self._ctx_id):
            return self._cuCtxDestroy()

    def _cuCtxDestroy(self) -> None:
        self._request({"op": protocol.OP_CTX_DESTROY})
        self._end = None
        self._crypto = None
        self._ctx_id = None
        self._seal_buf = None

    @property
    def ctx_id(self) -> int:
        if self._ctx_id is None:
            raise DriverError("no current context (call cuCtxCreate)")
        return self._ctx_id

    # -- sealed request/reply -----------------------------------------------------------

    def _request(self, payload: dict) -> dict:
        if self._end is None or self._crypto is None:
            raise DriverError("no current context (call cuCtxCreate)")
        self._rpc_overhead()
        sealed = seal_blob(self._crypto.request_suite,
                           self._crypto.request_nonces,
                           protocol.encode_message(payload),
                           associated_data=protocol.REQUEST_AAD)
        self._end.region.write(self._process, REQUEST_OFFSET, sealed,
                               enclave_mode=True)
        self._end.to_service.send("request", REQUEST_OFFSET, len(sealed))
        self._service.poll(self._end)
        note = self._end.to_user.recv()
        if note.kind == "gpu-untrusted":
            raise DriverError("GPU enclave terminated; GPU no longer trusted")
        raw = self._end.region.read(self._process, note.offset, note.length,
                                    enclave_mode=True)
        reply = protocol.decode_message(open_blob(
            self._crypto.reply_suite, raw,
            associated_data=protocol.REPLY_AAD,
            replay_guard=self._crypto.reply_guard))
        if not reply.get("ok"):
            raise RequestRejected(
                f"GPU enclave rejected request: {reply!r}",
                code=str(reply.get("code", protocol.ERR_DRIVER)))
        return reply

    # -- memory ---------------------------------------------------------------------------

    def cuMemAlloc(self, nbytes: int) -> DevPtr:
        reply = self._request({"op": protocol.OP_MALLOC, "nbytes": nbytes})
        return DevPtr(int(reply["gpu_va"]))

    def cuMemFree(self, dptr: DevPtr) -> None:
        self._request({"op": protocol.OP_FREE, "gpu_va": dptr.addr})

    def _bulk_chunk_limit(self) -> int:
        return self._end.region.bulk_capacity - HEADER_LEN

    def _chunk_seal_buf(self) -> bytearray:
        """Per-session scratch frame reused by every bulk chunk."""
        capacity = self._end.region.bulk_capacity
        if self._seal_buf is None or len(self._seal_buf) < capacity:
            self._seal_buf = bytearray(capacity)
        return self._seal_buf

    def cuMemcpyHtoD(self, dptr: DevPtr, data: HostBuffer) -> None:
        """Single-copy secure host-to-device transfer (Section 4.4.2/4.4.3).

        Per chunk: seal inside the user enclave, place ciphertext in the
        inter-enclave shared memory, ask the GPU enclave to DMA it
        straight into device memory, where the in-GPU kernel decrypts it.
        Time is charged as the chunked pipeline of Section 5.2 (encrypt
        overlapping transfer) plus the in-GPU decryption kernel.

        Fast path: the source is chunked through memoryviews (no slice
        copies) and every chunk is sealed into one reused per-session
        frame buffer instead of a fresh blob allocation.
        """
        tracer = _OBS.tracer
        if tracer is None:
            return self._cuMemcpyHtoD(dptr, data)
        with tracer.span("hix.cuMemcpyHtoD", "hix", ctx_id=self._ctx_id,
                         bytes=_as_buffer(data).nbytes):
            return self._cuMemcpyHtoD(dptr, data)

    def _cuMemcpyHtoD(self, dptr: DevPtr, data: HostBuffer) -> None:
        raw = _as_buffer(data)
        total = raw.nbytes
        limit = self._bulk_chunk_limit()
        seal_buf = self._chunk_seal_buf()
        offset = 0
        while offset < total or (not total and offset == 0):
            chunk = raw[offset:offset + limit]
            sealed_len = seal_blob_into(
                self._crypto.bulk_suite, self._crypto.bulk_h2d_nonces,
                chunk, seal_buf, associated_data=_bulk_aad(self.ctx_id))
            self._end.region.write(
                self._process, BULK_OFFSET,
                memoryview(seal_buf)[:sealed_len], enclave_mode=True)
            self._request({"op": protocol.OP_MEMCPY_HTOD,
                           "gpu_va": dptr.addr + offset,
                           "blob_len": sealed_len})
            offset += len(chunk)
            if not total:
                break
        if self._costs is not None:
            costs = self._costs
            modeled = costs.scaled(len(raw))
            self._charge(costs.memcpy_request_overhead_hix, "ipc")
            self._charge(pipelined_time(
                modeled,
                [costs.cpu_aead_bandwidth, costs.pcie_h2d_bandwidth],
                costs.pipeline_chunk_bytes,
                stage_latencies=[costs.cpu_aead_setup_latency,
                                 costs.dma_setup_latency]), "copy_h2d")
            self._charge(costs.gpu_aead_time(len(raw)), "crypto_gpu")

    def cuMemcpyDtoH(self, dptr: DevPtr, nbytes: int) -> bytes:
        """Single-copy secure device-to-host transfer."""
        tracer = _OBS.tracer
        if tracer is None:
            return self._cuMemcpyDtoH(dptr, nbytes)
        with tracer.span("hix.cuMemcpyDtoH", "hix", ctx_id=self._ctx_id,
                         bytes=nbytes):
            return self._cuMemcpyDtoH(dptr, nbytes)

    def _cuMemcpyDtoH(self, dptr: DevPtr, nbytes: int) -> bytes:
        limit = self._bulk_chunk_limit()
        out = bytearray(nbytes)
        view = memoryview(out)
        offset = 0
        while offset < nbytes:
            chunk = min(nbytes - offset, limit)
            reply = self._request({"op": protocol.OP_MEMCPY_DTOH,
                                   "gpu_va": dptr.addr + offset,
                                   "nbytes": chunk})
            blob_len = int(reply["blob_len"])
            if blob_len != sealed_size(chunk):
                raise ProtocolError("unexpected sealed blob size")
            sealed = self._end.region.read(self._process, BULK_OFFSET,
                                           blob_len, enclave_mode=True)
            view[offset:offset + chunk] = open_blob(
                self._crypto.bulk_suite, sealed,
                associated_data=_bulk_aad(self.ctx_id),
                replay_guard=self._crypto.bulk_d2h_guard)
            offset += chunk
        if self._costs is not None:
            costs = self._costs
            modeled = costs.scaled(nbytes)
            self._charge(costs.memcpy_request_overhead_hix, "ipc")
            self._charge(costs.gpu_aead_time(nbytes), "crypto_gpu")
            self._charge(pipelined_time(
                modeled,
                [costs.pcie_d2h_bandwidth, costs.cpu_aead_bandwidth],
                costs.pipeline_chunk_bytes,
                stage_latencies=[costs.dma_setup_latency,
                                 costs.cpu_aead_setup_latency]), "copy_d2h")
        return bytes(out)

    # -- modules / kernels ---------------------------------------------------------------------

    def cuModuleLoad(self, kernel_names: Sequence[str]) -> HixModuleHandle:
        reply = self._request({"op": protocol.OP_MODULE_LOAD,
                               "kernels": list(kernel_names)})
        return HixModuleHandle(int(reply["module_id"]), kernel_names)

    def cuLaunchKernel(self, module: HixModuleHandle, kernel_name: str,
                       params: Sequence[ParamValue],
                       compute_seconds: float = 0.0) -> None:
        tracer = _OBS.tracer
        if tracer is None:
            return self._cuLaunchKernel(module, kernel_name, params,
                                        compute_seconds)
        with tracer.span("hix.cuLaunchKernel", "hix", ctx_id=self._ctx_id,
                         kernel=kernel_name):
            return self._cuLaunchKernel(module, kernel_name, params,
                                        compute_seconds)

    def _cuLaunchKernel(self, module: HixModuleHandle, kernel_name: str,
                        params: Sequence[ParamValue],
                        compute_seconds: float = 0.0) -> None:
        if self._costs is not None:
            self._charge(self._costs.kernel_launch_hix, "launch")
        self._request({"op": protocol.OP_LAUNCH,
                       "module_id": module.module_id,
                       "kernel": kernel_name,
                       "params": protocol.encode_params(list(params)),
                       "compute_seconds": compute_seconds})

    # -- shutdown ----------------------------------------------------------------------------------

    def request_shutdown(self) -> None:
        """Ask the GPU enclave for a graceful termination (Section 4.2.3).

        The service notifies every session (including ours) that the GPU
        is no longer trusted before acknowledging, so the "GPU enclave
        terminated" signal *is* the success path here.
        """
        try:
            self._request({"op": protocol.OP_SHUTDOWN})
        except DriverError as exc:
            if "no longer trusted" not in str(exc):
                raise


def _bulk_aad(ctx_id: int) -> bytes:
    return b"hix-bulk-ctx-%d" % ctx_id
