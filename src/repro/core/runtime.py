"""Trusted user runtime library (paper Section 4.4).

"HIX provides the trusted user runtime library for applications, which
runs in each application enclave.  This library consists of GPU APIs
such as memory copy or GPU kernel launch operation, the security module
containing key initialization and user data encryption, and the
communication module for data transfers."

:class:`HixApi` exposes the same CUDA-driver-API facade as the baseline
:class:`~repro.gdev.api.GdevApi`, so application code runs unchanged on
either stack.  Internally every operation crosses the untrusted channel
as a sealed request, bulk data takes the single-copy pipelined path of
Section 4.4.2, and simulated time is charged analytically from the cost
model (pipelined encrypt-transfer overlap, in-GPU crypto kernels,
message-queue hops), matching the prototype's measurement decomposition.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.core import protocol
from repro.core.channel import BULK_OFFSET, ChannelEnd, REQUEST_OFFSET
from repro.core.gpu_enclave import (
    GpuEnclaveService,
    _report_from_wire,
    _report_to_wire,
)
from repro.core.key_exchange import (
    DiffieHellman,
    SessionCrypto,
    bind_report_data,
    build_session_crypto,
    check_binding,
    derive_key,
    dh_bytes_to_int,
    int_to_dh_bytes,
)
from repro.crypto.blob import (
    HEADER_LEN,
    open_blob,
    open_blob_chunks,
    seal_blob,
    seal_blob_into,
    seal_chunks_into,
    sealed_size,
)
from repro.errors import (
    AttestationError,
    DriverError,
    ProtocolError,
    RequestRejected,
)
from repro.gpu.module import DevPtr, ParamValue
from repro.obs.tracer import STATE as _OBS
from repro.osmodel.kernel import Kernel
from repro.osmodel.process import Process
from repro.sim.clock import SimClock
from repro.sim.costs import CostModel
from repro.sim.pipeline import pipelined_time, pipelined_times

HostBuffer = Union[bytes, bytearray, np.ndarray]


def _as_buffer(data: HostBuffer) -> memoryview:
    """A flat byte view of the caller's buffer — zero-copy when possible.

    C-contiguous numpy arrays and bytes-like objects are viewed in
    place; only non-contiguous arrays pay a copy.
    """
    if isinstance(data, np.ndarray):
        if not data.flags.c_contiguous:
            data = np.ascontiguousarray(data)
        return memoryview(data).cast("B")
    view = memoryview(data)
    if view.ndim != 1 or view.format not in ("B", "b", "c"):
        view = view.cast("B")
    return view


class HixModuleHandle:
    """Client-side handle to a module resident in the user's GPU context."""

    def __init__(self, module_id: int, kernel_names: Sequence[str]) -> None:
        self.module_id = module_id
        self.kernel_names = list(kernel_names)


class HixApi:
    """The trusted user runtime: CUDA-like API over the secure channel."""

    secure = True

    def __init__(self, kernel: Kernel, process: Process,
                 service: GpuEnclaveService, clock: Optional[SimClock] = None,
                 costs: Optional[CostModel] = None,
                 expected_gpu_enclave_measurement: Optional[bytes] = None,
                 suite_name: str = "fast-auth",
                 channel_queue_depth: Optional[int] = None) -> None:
        self._kernel = kernel
        self._process = process
        self._service = service
        self._clock = clock
        self._costs = costs
        self._suite_name = suite_name
        self._channel_queue_depth = channel_queue_depth
        self._expected_measurement = expected_gpu_enclave_measurement
        self._end: Optional[ChannelEnd] = None
        self._crypto: Optional[SessionCrypto] = None
        self._ctx_id: Optional[int] = None
        self._seal_buf: Optional[bytearray] = None  # reused per bulk chunk
        self._bulk_ad: Optional[bytes] = None  # built once per session
        self.user_enclave = process.enclave

    # -- timing helpers ----------------------------------------------------------

    def _charge(self, seconds: float, category: str) -> None:
        if self._clock is not None and seconds > 0.0:
            self._clock.advance(seconds, category)

    def _rpc_overhead(self) -> None:
        if self._costs is None:
            return
        self._charge(self._costs.rpc_round_trip(), "ipc")

    # -- lifecycle ------------------------------------------------------------------

    def __enter__(self) -> "HixApi":
        """Context-manager form: attested session in, teardown on exit."""
        if self._end is None:
            self.cuCtxCreate()
        return self

    def __exit__(self, *exc) -> None:
        try:
            self.cuCtxDestroy()
        except DriverError:
            # The service may already be gone (e.g. graceful shutdown).
            pass

    def cuInit(self) -> "HixApi":
        return self

    def cuCtxCreate(self) -> "HixApi":
        """Attested session setup + 3-party key exchange (Section 4.4.1)."""
        tracer = _OBS.tracer
        if tracer is None:
            return self._audited_ctx_create()
        with tracer.span("hix.cuCtxCreate", "hix", pid=self._process.pid):
            return self._audited_ctx_create()

    def _audited_ctx_create(self) -> "HixApi":
        """Session setup with its security evidence on the audit log:
        the mutual local-attestation verdict and the key exchange."""
        from repro.obs.audit import audit_log
        log = audit_log()
        subject = self._process.name
        now = self._clock.now if self._clock is not None else 0.0
        try:
            result = self._cuCtxCreate()
        except AttestationError as exc:
            log.record("hix.attestation", subject, time=now, ok=False,
                       detail=str(exc), cause="report", backend="hix")
            raise
        now = self._clock.now if self._clock is not None else now
        log.record("hix.attestation", subject, time=now,
                   detail="GPU enclave report and identity verified "
                          "(mutual local attestation)", backend="hix")
        log.record("hix.key_exchange", subject, time=now,
                   detail="3-party DH session key derived", backend="hix",
                   ctx_id=self._ctx_id)
        return result

    def _cuCtxCreate(self) -> "HixApi":
        if self._end is not None:
            raise DriverError("context already created")
        if self._costs is not None:
            self._charge(self._costs.hix_task_init, "task_init")
            self._charge(self._costs.session_setup, "session_setup")
        end = self._service.open_channel(
            self._process, queue_depth=self._channel_queue_depth)
        user_eid = self._process.enclave.enclave_id
        sgx = self._kernel.sgx

        dh_u = DiffieHellman(seed=b"user-%d" % self._process.pid)
        a_bytes = int_to_dh_bytes(dh_u.public_value)
        report = sgx.ereport(user_eid, self._service.measurement,
                             bind_report_data(a_bytes))
        hello = protocol.encode_message({
            "report": _report_to_wire(report),
            "dh_a": a_bytes.hex(),
        })
        end.region.write(self._process, REQUEST_OFFSET, hello,
                         enclave_mode=True)
        end.to_service.send("hello", REQUEST_OFFSET, len(hello))
        self._service.handle_hello(end)

        note = end.to_user.recv()
        if note.kind != "hello-ack":
            raise ProtocolError(f"expected hello-ack, got {note.kind!r}")
        raw = end.region.read(self._process, note.offset, note.length,
                              enclave_mode=True)
        ack = protocol.decode_message(raw)
        reply_report = _report_from_wire(ack["report"])
        # Mutual local attestation: verify the GPU enclave's report, its
        # identity, and that it really is a GPU enclave whose PCIe routing
        # was measured at EGCREATE (Sections 4.4.1, 5.5).
        from repro.sgx.attestation import verify_local_report
        verify_local_report(sgx, user_eid, reply_report)
        if not reply_report.is_gpu_enclave:
            raise AttestationError("peer is not a GPU enclave")
        if (self._expected_measurement is not None
                and reply_report.measurement != self._expected_measurement):
            raise AttestationError(
                "GPU enclave measurement does not match the expected "
                "(vendor-published) identity")
        e_bytes = bytes.fromhex(ack["dh_e"])
        check_binding(reply_report.report_data, e_bytes, a_bytes)
        session_key = derive_key(dh_u.raise_value(dh_bytes_to_int(e_bytes)))
        self._crypto = build_session_crypto(session_key, self._suite_name)
        self._ctx_id = int(ack["ctx_id"])
        self._bulk_ad = _bulk_aad(self._ctx_id)
        self._end = end
        return self

    def cuCtxDestroy(self) -> None:
        if self._end is None:
            return
        tracer = _OBS.tracer
        if tracer is None:
            return self._cuCtxDestroy()
        with tracer.span("hix.cuCtxDestroy", "hix", ctx_id=self._ctx_id):
            return self._cuCtxDestroy()

    def _cuCtxDestroy(self) -> None:
        self._request({"op": protocol.OP_CTX_DESTROY})
        self._end = None
        self._crypto = None
        self._ctx_id = None
        self._seal_buf = None
        self._bulk_ad = None

    @property
    def ctx_id(self) -> int:
        if self._ctx_id is None:
            raise DriverError("no current context (call cuCtxCreate)")
        return self._ctx_id

    # -- sealed request/reply -----------------------------------------------------------

    def _request(self, payload: dict) -> dict:
        if self._end is None or self._crypto is None:
            raise DriverError("no current context (call cuCtxCreate)")
        self._rpc_overhead()
        sealed = seal_blob(self._crypto.request_suite,
                           self._crypto.request_nonces,
                           protocol.encode_message(payload),
                           associated_data=protocol.REQUEST_AAD)
        self._end.region.write(self._process, REQUEST_OFFSET, sealed,
                               enclave_mode=True)
        self._end.to_service.send("request", REQUEST_OFFSET, len(sealed))
        self._service.poll(self._end)
        note = self._end.to_user.recv()
        if note.kind == "gpu-untrusted":
            raise DriverError("GPU enclave terminated; GPU no longer trusted")
        raw = self._end.region.read(self._process, note.offset, note.length,
                                    enclave_mode=True)
        reply = protocol.decode_message(open_blob(
            self._crypto.reply_suite, raw,
            associated_data=protocol.REPLY_AAD,
            replay_guard=self._crypto.reply_guard))
        if not reply.get("ok"):
            raise RequestRejected(
                f"GPU enclave rejected request: {reply!r}",
                code=str(reply.get("code", protocol.ERR_DRIVER)))
        return reply

    # -- memory ---------------------------------------------------------------------------

    def cuMemAlloc(self, nbytes: int) -> DevPtr:
        reply = self._request({"op": protocol.OP_MALLOC, "nbytes": nbytes})
        return DevPtr(int(reply["gpu_va"]))

    def cuMemFree(self, dptr: DevPtr) -> None:
        self._request({"op": protocol.OP_FREE, "gpu_va": dptr.addr})

    def _bulk_chunk_limit(self) -> int:
        return self._end.region.bulk_capacity - HEADER_LEN

    def _chunk_seal_buf(self) -> bytearray:
        """Per-session scratch frame reused by every bulk chunk."""
        capacity = self._end.region.bulk_capacity
        if self._seal_buf is None or len(self._seal_buf) < capacity:
            self._seal_buf = bytearray(capacity)
        return self._seal_buf

    def cuMemcpyHtoD(self, dptr: DevPtr, data: HostBuffer) -> None:
        """Single-copy secure host-to-device transfer (Section 4.4.2/4.4.3).

        Per chunk: seal inside the user enclave, place ciphertext in the
        inter-enclave shared memory, ask the GPU enclave to DMA it
        straight into device memory, where the in-GPU kernel decrypts it.
        Time is charged as the chunked pipeline of Section 5.2 (encrypt
        overlapping transfer) plus the in-GPU decryption kernel.

        Fast path: the source is chunked through memoryviews (no slice
        copies) and every chunk is sealed into one reused per-session
        frame buffer instead of a fresh blob allocation.
        """
        tracer = _OBS.tracer
        if tracer is None:
            return self._cuMemcpyHtoD(dptr, data)
        with tracer.span("hix.cuMemcpyHtoD", "hix", ctx_id=self._ctx_id,
                         bytes=_as_buffer(data).nbytes):
            return self._cuMemcpyHtoD(dptr, data)

    def _cuMemcpyHtoD(self, dptr: DevPtr, data: HostBuffer) -> None:
        raw = _as_buffer(data)
        total = raw.nbytes
        limit = self._bulk_chunk_limit()
        seal_buf = self._chunk_seal_buf()
        offset = 0
        while offset < total or (not total and offset == 0):
            chunk = raw[offset:offset + limit]
            sealed_len = seal_blob_into(
                self._crypto.bulk_suite, self._crypto.bulk_h2d_nonces,
                chunk, seal_buf, associated_data=self._bulk_ad)
            self._end.region.write(
                self._process, BULK_OFFSET,
                memoryview(seal_buf)[:sealed_len], enclave_mode=True)
            self._request({"op": protocol.OP_MEMCPY_HTOD,
                           "gpu_va": dptr.addr + offset,
                           "blob_len": sealed_len})
            offset += len(chunk)
            if not total:
                break
        if self._costs is not None:
            costs = self._costs
            modeled = costs.scaled(len(raw))
            self._charge(costs.memcpy_request_overhead_hix, "ipc")
            self._charge(pipelined_time(
                modeled,
                [costs.cpu_aead_bandwidth, costs.pcie_h2d_bandwidth],
                costs.pipeline_chunk_bytes,
                stage_latencies=[costs.cpu_aead_setup_latency,
                                 costs.dma_setup_latency]), "copy_h2d")
            self._charge(costs.gpu_aead_time(len(raw)), "crypto_gpu")

    def cuMemcpyDtoH(self, dptr: DevPtr, nbytes: int) -> bytes:
        """Single-copy secure device-to-host transfer."""
        tracer = _OBS.tracer
        if tracer is None:
            return self._cuMemcpyDtoH(dptr, nbytes)
        with tracer.span("hix.cuMemcpyDtoH", "hix", ctx_id=self._ctx_id,
                         bytes=nbytes):
            return self._cuMemcpyDtoH(dptr, nbytes)

    def _cuMemcpyDtoH(self, dptr: DevPtr, nbytes: int) -> bytes:
        limit = self._bulk_chunk_limit()
        out = bytearray(nbytes)
        view = memoryview(out)
        offset = 0
        while offset < nbytes:
            chunk = min(nbytes - offset, limit)
            reply = self._request({"op": protocol.OP_MEMCPY_DTOH,
                                   "gpu_va": dptr.addr + offset,
                                   "nbytes": chunk})
            blob_len = int(reply["blob_len"])
            if blob_len != sealed_size(chunk):
                raise ProtocolError("unexpected sealed blob size")
            sealed = self._end.region.read(self._process, BULK_OFFSET,
                                           blob_len, enclave_mode=True)
            view[offset:offset + chunk] = open_blob(
                self._crypto.bulk_suite, sealed,
                associated_data=self._bulk_ad,
                replay_guard=self._crypto.bulk_d2h_guard)
            offset += chunk
        if self._costs is not None:
            costs = self._costs
            modeled = costs.scaled(nbytes)
            self._charge(costs.memcpy_request_overhead_hix, "ipc")
            self._charge(costs.gpu_aead_time(nbytes), "crypto_gpu")
            self._charge(pipelined_time(
                modeled,
                [costs.pcie_d2h_bandwidth, costs.cpu_aead_bandwidth],
                costs.pipeline_chunk_bytes,
                stage_latencies=[costs.dma_setup_latency,
                                 costs.cpu_aead_setup_latency]), "copy_d2h")
        return bytes(out)

    # -- batched transfers --------------------------------------------------------------------

    def cuMemcpyHtoDBatch(self, items: Sequence) -> None:
        """Batched uploads: ``items`` is ``[(DevPtr, data), ...]``.

        Consecutive items are greedily packed into fused frames bounded
        by the shared region's bulk capacity; each frame is sealed with
        ONE AEAD call and crosses the channel as ONE sealed request, and
        the in-GPU scatter kernel authenticates it once before
        distributing the chunks.  Simulated time is still charged *per
        item*, exactly as the equivalent sequence of
        :meth:`cuMemcpyHtoD` calls would charge it — batching changes
        the real execution, never the virtual timeline.  Items larger
        than one frame fall back to the scalar chunked path.
        """
        tracer = _OBS.tracer
        if tracer is None:
            return self._cuMemcpyHtoDBatch(items)
        with tracer.span("hix.cuMemcpyHtoDBatch", "hix",
                         ctx_id=self._ctx_id, items=len(items)):
            return self._cuMemcpyHtoDBatch(items)

    def _cuMemcpyHtoDBatch(self, items: Sequence) -> None:
        limit = self._bulk_chunk_limit()
        seal_buf = self._chunk_seal_buf()
        sizes: list = []

        frame_chunks: list = []
        frame_vas: list = []
        frame_lens: list = []
        frame_bytes = 0
        frames = 0

        def flush_frame() -> None:
            nonlocal frame_bytes, frames
            if not frame_chunks:
                return
            sealed_len = seal_chunks_into(
                self._crypto.bulk_suite, self._crypto.bulk_h2d_nonces,
                frame_chunks, seal_buf, associated_data=self._bulk_ad)
            self._end.region.write(
                self._process, BULK_OFFSET,
                memoryview(seal_buf)[:sealed_len], enclave_mode=True)
            self._request({"op": protocol.OP_MEMCPY_HTOD_BATCH,
                           "gpu_vas": frame_vas, "lengths": frame_lens,
                           "blob_len": sealed_len})
            frame_chunks.clear()
            frame_vas.clear()
            frame_lens.clear()
            frame_bytes = 0
            frames += 1

        for dptr, data in items:
            raw = _as_buffer(data)
            sizes.append(raw.nbytes)
            if raw.nbytes > limit:
                # Oversized item: can't share a frame — scalar path.
                flush_frame()
                self._scalar_htod_bytes(dptr, raw)
                frames += 1
                continue
            if frame_bytes + raw.nbytes > limit:
                flush_frame()
            frame_chunks.append(raw)
            frame_vas.append(dptr.addr)
            frame_lens.append(raw.nbytes)
            frame_bytes += raw.nbytes
        flush_frame()

        if self._costs is not None and sizes:
            costs = self._costs
            copy = pipelined_times(
                [costs.scaled(n) for n in sizes],
                [costs.cpu_aead_bandwidth, costs.pcie_h2d_bandwidth],
                costs.pipeline_chunk_bytes,
                stage_latencies=[costs.cpu_aead_setup_latency,
                                 costs.dma_setup_latency])
            # _request already charged one RPC per frame; top up to the
            # one-RPC-per-item cost the scalar sequence would have paid.
            for _ in range(len(sizes) - frames):
                self._charge(costs.rpc_round_trip(), "ipc")
            for nbytes, seconds in zip(sizes, copy):
                self._charge(costs.memcpy_request_overhead_hix, "ipc")
                self._charge(float(seconds), "copy_h2d")
                self._charge(costs.gpu_aead_time(nbytes), "crypto_gpu")

    def _scalar_htod_bytes(self, dptr: DevPtr, raw: memoryview) -> None:
        """Uncharged scalar upload used by the batch fallback path."""
        limit = self._bulk_chunk_limit()
        seal_buf = self._chunk_seal_buf()
        offset = 0
        while offset < raw.nbytes or (not raw.nbytes and offset == 0):
            chunk = raw[offset:offset + limit]
            sealed_len = seal_blob_into(
                self._crypto.bulk_suite, self._crypto.bulk_h2d_nonces,
                chunk, seal_buf, associated_data=self._bulk_ad)
            self._end.region.write(
                self._process, BULK_OFFSET,
                memoryview(seal_buf)[:sealed_len], enclave_mode=True)
            self._request({"op": protocol.OP_MEMCPY_HTOD,
                           "gpu_va": dptr.addr + offset,
                           "blob_len": sealed_len})
            offset += len(chunk)
            if not raw.nbytes:
                break

    def cuMemcpyDtoHBatch(self, items: Sequence) -> list:
        """Batched downloads: ``items`` is ``[(DevPtr, nbytes), ...]``.

        Mirrors :meth:`cuMemcpyHtoDBatch`: the gather kernel seals each
        fused frame once on-device, one sealed request per frame crosses
        the channel, and the runtime opens each frame with one AEAD call
        before splitting it back into per-item results (returned in
        submission order).  Per-item virtual time matches the equivalent
        scalar :meth:`cuMemcpyDtoH` sequence.
        """
        tracer = _OBS.tracer
        if tracer is None:
            return self._cuMemcpyDtoHBatch(items)
        with tracer.span("hix.cuMemcpyDtoHBatch", "hix",
                         ctx_id=self._ctx_id, items=len(items)):
            return self._cuMemcpyDtoHBatch(items)

    def _cuMemcpyDtoHBatch(self, items: Sequence) -> list:
        limit = self._bulk_chunk_limit()
        results: list = [None] * len(items)
        sizes = [int(nbytes) for _, nbytes in items]

        frame: list = []       # (result_index, gpu_va, nbytes)
        frame_bytes = 0
        frames = 0

        def flush_frame() -> None:
            nonlocal frame_bytes, frames
            if not frame:
                return
            gpu_vas = [va for _, va, _ in frame]
            lengths = [n for _, _, n in frame]
            reply = self._request({"op": protocol.OP_MEMCPY_DTOH_BATCH,
                                   "gpu_vas": gpu_vas, "lengths": lengths})
            blob_len = int(reply["blob_len"])
            if blob_len != sealed_size(sum(lengths)):
                raise ProtocolError("unexpected sealed batch blob size")
            sealed = self._end.region.read(self._process, BULK_OFFSET,
                                           blob_len, enclave_mode=True)
            chunks = open_blob_chunks(
                self._crypto.bulk_suite, sealed, lengths,
                associated_data=self._bulk_ad,
                replay_guard=self._crypto.bulk_d2h_guard)
            for (index, _, _), chunk in zip(frame, chunks):
                results[index] = chunk
            frame.clear()
            frame_bytes = 0
            frames += 1

        for index, (dptr, nbytes) in enumerate(items):
            nbytes = int(nbytes)
            if nbytes > limit:
                flush_frame()
                results[index] = self._cuMemcpyDtoH_uncharged(dptr, nbytes)
                frames += 1
                continue
            if frame_bytes + nbytes > limit:
                flush_frame()
            frame.append((index, dptr.addr, nbytes))
            frame_bytes += nbytes
        flush_frame()

        if self._costs is not None and sizes:
            costs = self._costs
            copy = pipelined_times(
                [costs.scaled(n) for n in sizes],
                [costs.pcie_d2h_bandwidth, costs.cpu_aead_bandwidth],
                costs.pipeline_chunk_bytes,
                stage_latencies=[costs.dma_setup_latency,
                                 costs.cpu_aead_setup_latency])
            for _ in range(len(sizes) - frames):
                self._charge(costs.rpc_round_trip(), "ipc")
            for nbytes, seconds in zip(sizes, copy):
                self._charge(costs.memcpy_request_overhead_hix, "ipc")
                self._charge(costs.gpu_aead_time(nbytes), "crypto_gpu")
                self._charge(float(seconds), "copy_d2h")
        return results

    def _cuMemcpyDtoH_uncharged(self, dptr: DevPtr, nbytes: int) -> bytes:
        """Scalar chunked download without analytic charges (batch fallback)."""
        limit = self._bulk_chunk_limit()
        out = bytearray(nbytes)
        view = memoryview(out)
        offset = 0
        while offset < nbytes:
            chunk = min(nbytes - offset, limit)
            reply = self._request({"op": protocol.OP_MEMCPY_DTOH,
                                   "gpu_va": dptr.addr + offset,
                                   "nbytes": chunk})
            blob_len = int(reply["blob_len"])
            if blob_len != sealed_size(chunk):
                raise ProtocolError("unexpected sealed blob size")
            sealed = self._end.region.read(self._process, BULK_OFFSET,
                                           blob_len, enclave_mode=True)
            view[offset:offset + chunk] = open_blob(
                self._crypto.bulk_suite, sealed,
                associated_data=self._bulk_ad,
                replay_guard=self._crypto.bulk_d2h_guard)
            offset += chunk
        return bytes(out)

    def cuLaunchKernelBatch(self, module: "HixModuleHandle",
                            launches: Sequence) -> None:
        """Batched launches: ``launches`` is ``[(kernel, params, secs), ...]``.

        The whole group crosses the channel as ONE sealed request (one
        seal + one open instead of one per launch); the service runs the
        launches in order.  Launch overhead is still charged per launch.
        """
        tracer = _OBS.tracer
        if tracer is None:
            return self._cuLaunchKernelBatch(module, launches)
        with tracer.span("hix.cuLaunchKernelBatch", "hix",
                         ctx_id=self._ctx_id, items=len(launches)):
            return self._cuLaunchKernelBatch(module, launches)

    def _cuLaunchKernelBatch(self, module: "HixModuleHandle",
                             launches: Sequence) -> None:
        if not launches:
            return
        if self._costs is not None:
            for _ in range(len(launches) - 1):
                self._charge(self._costs.rpc_round_trip(), "ipc")
            for _ in launches:
                self._charge(self._costs.kernel_launch_hix, "launch")
        self._request({"op": protocol.OP_LAUNCH_BATCH, "launches": [
            {"module_id": module.module_id,
             "kernel": str(kernel_name),
             "params": protocol.encode_params(list(params)),
             "compute_seconds": float(compute_seconds)}
            for kernel_name, params, compute_seconds in launches]})

    # -- modules / kernels ---------------------------------------------------------------------

    def cuModuleLoad(self, kernel_names: Sequence[str]) -> HixModuleHandle:
        reply = self._request({"op": protocol.OP_MODULE_LOAD,
                               "kernels": list(kernel_names)})
        return HixModuleHandle(int(reply["module_id"]), kernel_names)

    def cuLaunchKernel(self, module: HixModuleHandle, kernel_name: str,
                       params: Sequence[ParamValue],
                       compute_seconds: float = 0.0) -> None:
        tracer = _OBS.tracer
        if tracer is None:
            return self._cuLaunchKernel(module, kernel_name, params,
                                        compute_seconds)
        with tracer.span("hix.cuLaunchKernel", "hix", ctx_id=self._ctx_id,
                         kernel=kernel_name):
            return self._cuLaunchKernel(module, kernel_name, params,
                                        compute_seconds)

    def _cuLaunchKernel(self, module: HixModuleHandle, kernel_name: str,
                        params: Sequence[ParamValue],
                        compute_seconds: float = 0.0) -> None:
        if self._costs is not None:
            self._charge(self._costs.kernel_launch_hix, "launch")
        self._request({"op": protocol.OP_LAUNCH,
                       "module_id": module.module_id,
                       "kernel": kernel_name,
                       "params": protocol.encode_params(list(params)),
                       "compute_seconds": compute_seconds})

    # -- shutdown ----------------------------------------------------------------------------------

    def request_shutdown(self) -> None:
        """Ask the GPU enclave for a graceful termination (Section 4.2.3).

        The service notifies every session (including ours) that the GPU
        is no longer trusted before acknowledging, so the "GPU enclave
        terminated" signal *is* the success path here.
        """
        try:
            self._request({"op": protocol.OP_SHUTDOWN})
        except DriverError as exc:
            if "no longer trusted" not in str(exc):
                raise


def _bulk_aad(ctx_id: int) -> bytes:
    return b"hix-bulk-ctx-%d" % ctx_id
