"""HIX core: the paper's primary contribution, assembled.

* :mod:`repro.core.protocol` — inter-enclave request/reply wire format.
* :mod:`repro.core.channel` — message queue + shared memory (untrusted
  media) connecting user enclaves to the GPU enclave (Section 4.4.1).
* :mod:`repro.core.key_exchange` — local attestation + three-party
  Diffie-Hellman session setup (user enclave, GPU enclave, GPU).
* :mod:`repro.core.gpu_enclave` — the GPU enclave service: the relocated
  driver, GPU initialization/measurement, request serving, per-user
  contexts (Sections 4.2, 4.4, 4.5).
* :mod:`repro.core.runtime` — the trusted user runtime library with its
  CUDA-like API (Section 4.4), including the single-copy pipelined
  secure memcpy (Section 4.4.2/5.2).
* :mod:`repro.core.multiuser` — the concurrent multi-user execution
  model behind Figures 8 and 9.
"""

from repro.core.channel import ChannelEnd, MessageQueue, SharedMemoryRegion
from repro.core.gpu_enclave import GpuEnclaveService
from repro.core.multiuser import Segment, simulate_concurrent
from repro.core.runtime import HixApi

__all__ = [
    "MessageQueue",
    "SharedMemoryRegion",
    "ChannelEnd",
    "GpuEnclaveService",
    "HixApi",
    "Segment",
    "simulate_concurrent",
]
