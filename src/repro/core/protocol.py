"""Inter-enclave protocol: request/reply encoding and channel constants.

Control messages are small JSON-encoded dictionaries sealed with the
session's *request*/*reply* subkeys; bulk data travels separately as
sealed blobs under the *bulk* subkey (single-copy path).  Each direction
has its own nonce channel so one session key can never produce a nonce
collision, and receivers run replay guards — the "incrementing nonce ...
to prevent replay attacks" of Section 5.5.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.errors import (
    GpuUnavailable,
    OutOfDeviceMemory,
    ProtocolError,
    UnknownOperation,
)

# Nonce channel ids (must match repro.gpu.device for the bulk channels).
CH_BULK_H2D = 1   # user enclave -> GPU (sealed blobs through shared memory)
CH_BULK_D2H = 2   # GPU -> user enclave
CH_REQUEST = 3    # user enclave -> GPU enclave control messages
CH_REPLY = 4      # GPU enclave -> user enclave control messages

REQUEST_AAD = b"hix-request"
REPLY_AAD = b"hix-reply"

# Request operations the GPU enclave serves.  The ``*_batch`` variants
# coalesce several same-session transfers/launches into one sealed
# request (one AEAD seal/open per direction instead of one per item);
# the per-item structure travels as explicit tables inside the request.
OP_CTX_DESTROY = "ctx_destroy"
OP_FREE = "free"
OP_LAUNCH = "launch"
OP_LAUNCH_BATCH = "launch_batch"
OP_MALLOC = "malloc"
OP_MEMCPY_DTOH = "memcpy_dtoh"
OP_MEMCPY_DTOH_BATCH = "memcpy_dtoh_batch"
OP_MEMCPY_HTOD = "memcpy_htod"
OP_MEMCPY_HTOD_BATCH = "memcpy_htod_batch"
OP_MODULE_LOAD = "module_load"
OP_SHUTDOWN = "shutdown"

ALL_OPS = frozenset({
    OP_CTX_DESTROY, OP_FREE, OP_LAUNCH, OP_LAUNCH_BATCH, OP_MALLOC,
    OP_MEMCPY_DTOH, OP_MEMCPY_DTOH_BATCH, OP_MEMCPY_HTOD,
    OP_MEMCPY_HTOD_BATCH, OP_MODULE_LOAD, OP_SHUTDOWN,
})

# Machine-readable error codes carried in structured error replies.
# An authenticated-but-invalid request never crashes the service: the
# GPU enclave answers with ``{"ok": False, "code": ..., "error": ...}``
# and keeps serving the session.
ERR_UNKNOWN_OP = "unknown_op"     # op outside ALL_OPS
ERR_PROTOCOL = "protocol"         # malformed/ill-sequenced request body
ERR_RESOURCES = "resources"       # device memory / quota exhaustion
ERR_UNAVAILABLE = "unavailable"   # GPU enclave shut down mid-session
ERR_DRIVER = "driver"             # any other request-level driver fault


def encode_message(payload: Dict[str, Any]) -> bytes:
    """Deterministically serialize a control message."""
    try:
        return json.dumps(payload, sort_keys=True,
                          separators=(",", ":")).encode()
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"unserializable message: {exc}") from exc


def decode_message(raw: bytes) -> Dict[str, Any]:
    try:
        payload = json.loads(raw.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed message: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError("message must be a JSON object")
    return payload


def check_request(payload: Dict[str, Any]) -> str:
    op = payload.get("op")
    if op not in ALL_OPS:
        raise UnknownOperation(f"unknown request op {op!r}")
    return op


def error_code_for(exc: Exception) -> str:
    """Map a request-level fault onto its wire error code."""
    if isinstance(exc, UnknownOperation):
        return ERR_UNKNOWN_OP
    if isinstance(exc, ProtocolError):
        return ERR_PROTOCOL
    if isinstance(exc, OutOfDeviceMemory):
        return ERR_RESOURCES
    if isinstance(exc, GpuUnavailable):
        return ERR_UNAVAILABLE
    return ERR_DRIVER


def error_reply(exc: Exception) -> Dict[str, Any]:
    """The structured error reply for a failed (but authentic) request."""
    return {"ok": False, "code": error_code_for(exc),
            "error": f"{type(exc).__name__}: {exc}"}


# -- launch-parameter marshalling (JSON-safe) ---------------------------------

def encode_params(params) -> list:
    """Marshal launch parameters for transport inside a sealed request."""
    from repro.gpu.module import DevPtr
    encoded = []
    for value in params:
        if isinstance(value, DevPtr):
            encoded.append({"t": "ptr", "v": value.addr})
        elif isinstance(value, bool):
            encoded.append({"t": "u64", "v": int(value)})
        elif isinstance(value, int):
            encoded.append({"t": "u64", "v": value})
        elif isinstance(value, float):
            encoded.append({"t": "f64", "v": value})
        else:
            raise ProtocolError(f"unsupported launch parameter {value!r}")
    return encoded


def decode_params(encoded) -> list:
    from repro.gpu.module import DevPtr
    params = []
    for item in encoded:
        kind = item.get("t")
        if kind == "ptr":
            params.append(DevPtr(int(item["v"])))
        elif kind == "u64":
            params.append(int(item["v"]))
        elif kind == "f64":
            params.append(float(item["v"]))
        else:
            raise ProtocolError(f"unknown parameter kind {kind!r}")
    return params
