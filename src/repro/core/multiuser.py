"""Concurrent multi-user execution model (paper Section 4.5, Figures 8-9).

Pre-Volta GPUs execute one context at a time; when several user enclaves
share the GPU, their command streams interleave through context
switches, and under HIX every data transfer adds in-GPU cryptography
kernels to the stream — "the overheads from the cryptography kernel
execution itself, increased context switches, and resource
underutilization for small data cryptography" (Section 5.4).

The model is a small discrete-event simulation: each user is a sequence
of :class:`Segment`\\ s — ``host`` work (CPU/crypto/transfer prep that
overlaps freely across users) and ``gpu`` work (serialized on the single
GPU engine, FIFO-arbitrated, paying a context-switch cost whenever the
engine changes owner).  The evaluation harness converts a workload's
phase profile into segments via the cost model and reads off makespans.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class Segment:
    """One phase of a user's execution."""

    kind: str        # "host" or "gpu"
    duration: float  # seconds
    label: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("host", "gpu"):
            raise ValueError(f"segment kind must be host|gpu, got {self.kind!r}")
        if self.duration < 0:
            raise ValueError("segment duration must be non-negative")


@dataclass
class UserTimeline:
    """Per-user result of the simulation."""

    finish_time: float
    gpu_busy: float
    host_busy: float
    waits: float


def simulate_concurrent(users: Sequence[Sequence[Segment]],
                        ctx_switch_cost: float
                        ) -> Tuple[float, List[UserTimeline], Dict[str, float]]:
    """Simulate *users* sharing one GPU; returns (makespan, per-user, stats).

    Host segments of different users overlap fully (each user has a CPU
    core — the testbed is 4C/8T for at most 4 users).  GPU segments
    queue FIFO on the engine; a context switch is charged whenever the
    engine's resident context changes (including the first occupancy of
    a previously-used engine, matching Fermi's save/restore behaviour
    between non-empty contexts).
    """
    num_users = len(users)
    cursors = [0] * num_users           # next segment index per user
    ready_at = [0.0] * num_users        # when the user can proceed
    timelines = [UserTimeline(0.0, 0.0, 0.0, 0.0) for _ in range(num_users)]

    gpu_free_at = 0.0
    resident_ctx = None
    switches = 0
    events: List[Tuple[float, int, int]] = []  # (time, seq, user)
    seq = itertools.count()
    for user in range(num_users):
        heapq.heappush(events, (0.0, next(seq), user))

    while events:
        now, _tie, user = heapq.heappop(events)
        segments = users[user]
        if cursors[user] >= len(segments):
            timelines[user].finish_time = max(timelines[user].finish_time, now)
            continue
        segment = segments[cursors[user]]
        cursors[user] += 1
        if segment.kind == "host":
            timelines[user].host_busy += segment.duration
            finish = now + segment.duration
        else:
            start = max(now, gpu_free_at)
            timelines[user].waits += start - now
            if resident_ctx != user:
                if resident_ctx is not None:
                    start += ctx_switch_cost
                    switches += 1
                resident_ctx = user
            finish = start + segment.duration
            timelines[user].gpu_busy += segment.duration
            gpu_free_at = finish
        timelines[user].finish_time = finish
        heapq.heappush(events, (finish, next(seq), user))

    makespan = max((t.finish_time for t in timelines), default=0.0)
    stats = {
        "context_switches": float(switches),
        "gpu_utilization": (sum(t.gpu_busy for t in timelines) / makespan
                            if makespan > 0 else 0.0),
    }
    return makespan, timelines, stats


def interleave_copies(total_bytes: float, chunk: float, host_rate: float,
                      gpu_rate: float, gpu_kernel_latency: float
                      ) -> List[Segment]:
    """Helper: chunked secure copy as alternating host/gpu segments.

    Models the multi-user behaviour where each chunk's CPU-side sealing
    and transfer is host work but its in-GPU crypto kernel occupies the
    engine — forcing interleaving (and context switches) with other
    users' kernels, the effect Section 5.4 blames for the multi-user
    overhead.
    """
    segments: List[Segment] = []
    remaining = total_bytes
    while remaining > 0:
        this_chunk = min(chunk, remaining)
        segments.append(Segment("host", this_chunk / host_rate, "seal+xfer"))
        segments.append(Segment("gpu", gpu_kernel_latency
                                + this_chunk / gpu_rate, "crypto-kernel"))
        remaining -= this_chunk
    return segments
