"""Concurrent multi-user execution model (paper Section 4.5, Figures 8-9).

Pre-Volta GPUs execute one context at a time; when several user enclaves
share the GPU, their command streams interleave through context
switches, and under HIX every data transfer adds in-GPU cryptography
kernels to the stream — "the overheads from the cryptography kernel
execution itself, increased context switches, and resource
underutilization for small data cryptography" (Section 5.4).

The model is a small discrete-event simulation: each user is a sequence
of :class:`Segment`\\ s — ``host`` work (CPU/crypto/transfer prep that
overlaps freely across users) and ``gpu`` work (serialized on the single
GPU engine, FIFO-arbitrated, paying a context-switch cost whenever the
engine changes owner).  The evaluation harness converts a workload's
phase profile into segments via the cost model and reads off makespans.

Since the timing-layer unification this module is a thin adapter over
the shared discrete-event kernel (:mod:`repro.sim.engine`): each user
becomes a kernel lane of single-segment work units and the GPU is the
kernel's exclusive :class:`~repro.sim.engine.Resource` under native
FIFO arbitration.  The pre-kernel heapq implementation lives on as the
reference oracle in ``tests/property/oracles.py``, and the property
suite pins this adapter to it exactly — makespan, per-user timelines,
and stats — on arbitrary tie-heavy inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.sim.engine import TenantLane, WorkUnit, run_lanes


@dataclass(frozen=True)
class Segment:
    """One phase of a user's execution."""

    kind: str        # "host" or "gpu"
    duration: float  # seconds
    label: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("host", "gpu"):
            raise ValueError(f"segment kind must be host|gpu, got {self.kind!r}")
        if self.duration < 0:
            raise ValueError("segment duration must be non-negative")


@dataclass
class UserTimeline:
    """Per-user result of the simulation."""

    finish_time: float
    gpu_busy: float
    host_busy: float
    waits: float


def simulate_concurrent(users: Sequence[Sequence[Segment]],
                        ctx_switch_cost: float
                        ) -> Tuple[float, List[UserTimeline], Dict[str, float]]:
    """Simulate *users* sharing one GPU; returns (makespan, per-user, stats).

    Host segments of different users overlap fully (each user has a CPU
    core — the testbed is 4C/8T for at most 4 users).  GPU segments
    queue FIFO on the engine; a context switch is charged whenever the
    engine's resident context changes (including the first occupancy of
    a previously-used engine, matching Fermi's save/restore behaviour
    between non-empty contexts).

    Executes on the shared kernel (:func:`repro.sim.engine.run_lanes`)
    with one single-segment lane per user and the kernel's native FIFO
    arbitration; results are pinned exactly — ties included — to the
    retired heapq oracle by the property suite.
    """
    lanes = [TenantLane(units=[
        WorkUnit(seg.duration, None, seg.label) if seg.kind == "host"
        else WorkUnit(0.0, seg.duration, seg.label)
        for seg in segments], max_inflight=1) for segments in users]
    result = run_lanes(lanes, None, ctx_switch_cost)
    timelines = [UserTimeline(t.finish_time, t.gpu_busy, t.host_busy, t.waits)
                 for t in result.timelines]
    stats = {
        "context_switches": float(result.context_switches),
        "gpu_utilization": (sum(t.gpu_busy for t in timelines)
                            / result.makespan if result.makespan > 0 else 0.0),
    }
    return result.makespan, timelines, stats


def interleave_copies(total_bytes: float, chunk: float, host_rate: float,
                      gpu_rate: float, gpu_kernel_latency: float
                      ) -> List[Segment]:
    """Helper: chunked secure copy as alternating host/gpu segments.

    Models the multi-user behaviour where each chunk's CPU-side sealing
    and transfer is host work but its in-GPU crypto kernel occupies the
    engine — forcing interleaving (and context switches) with other
    users' kernels, the effect Section 5.4 blames for the multi-user
    overhead.
    """
    segments: List[Segment] = []
    remaining = total_bytes
    while remaining > 0:
        this_chunk = min(chunk, remaining)
        segments.append(Segment("host", this_chunk / host_rate, "seal+xfer"))
        segments.append(Segment("gpu", gpu_kernel_latency
                                + this_chunk / gpu_rate, "crypto-kernel"))
        remaining -= this_chunk
    return segments
