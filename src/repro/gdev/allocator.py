"""First-fit VRAM allocator with optional cleansing on free.

One allocator manages the whole device memory (the GPU has no MMU-side
allocator; drivers own placement).  HIX's runtime frees with
``cleanse=True`` — the paper requires "the GPU runtime system must
cleanse the deallocated global memory" to stop cross-context residual
leaks (Section 4.5); Gdev's baseline path frees without cleansing, which
is the leak the security tests demonstrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import InvalidDevicePointer, OutOfDeviceMemory

_GRANULE = 4096


def _round_up(nbytes: int) -> int:
    return (nbytes + _GRANULE - 1) & ~(_GRANULE - 1)


@dataclass
class VramBlock:
    base: int
    size: int


class VramAllocator:
    """First-fit free-list allocator over [0, capacity)."""

    def __init__(self, capacity: int, reserve_low: int = _GRANULE) -> None:
        if capacity % _GRANULE:
            raise ValueError("capacity must be allocation-granule aligned")
        self.capacity = capacity
        self._free: List[VramBlock] = [
            VramBlock(reserve_low, capacity - reserve_low)]
        self._live: Dict[int, int] = {}  # base -> size

    @property
    def bytes_in_use(self) -> int:
        return sum(self._live.values())

    @property
    def bytes_free(self) -> int:
        return sum(block.size for block in self._free)

    def alloc(self, nbytes: int) -> int:
        if nbytes <= 0:
            raise ValueError("allocation size must be positive")
        size = _round_up(nbytes)
        for index, block in enumerate(self._free):
            if block.size >= size:
                base = block.base
                if block.size == size:
                    self._free.pop(index)
                else:
                    block.base += size
                    block.size -= size
                self._live[base] = size
                return base
        raise OutOfDeviceMemory(
            f"VRAM: need {size:#x}, largest free "
            f"{max((b.size for b in self._free), default=0):#x}")

    def free(self, base: int) -> Tuple[int, int]:
        """Release an allocation; returns (base, size) for cleansing."""
        size = self._live.pop(base, None)
        if size is None:
            raise InvalidDevicePointer(f"free of unallocated VRAM {base:#x}")
        self._insert_free(VramBlock(base, size))
        return base, size

    def size_of(self, base: int) -> int:
        size = self._live.get(base)
        if size is None:
            raise InvalidDevicePointer(f"unknown device pointer {base:#x}")
        return size

    def _insert_free(self, block: VramBlock) -> None:
        """Keep the free list sorted and coalesced."""
        self._free.append(block)
        self._free.sort(key=lambda b: b.base)
        merged: List[VramBlock] = []
        for candidate in self._free:
            if merged and merged[-1].base + merged[-1].size == candidate.base:
                merged[-1].size += candidate.size
            else:
                merged.append(candidate)
        self._free = merged

    def live_allocations(self) -> Dict[int, int]:
        return dict(self._live)
