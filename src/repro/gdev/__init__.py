"""Gdev: the open-source CUDA stack used as the paper's baseline.

The paper builds HIX on Gdev (Kato et al., USENIX ATC'12) and reports
every result against "the original unsecure Gdev platform".  This
package is that baseline: a kernel-resident driver that owns the GPU's
MMIO, a VRAM allocator, module loading, and a CUDA-driver-API-shaped
facade (``cuMemAlloc``/``cuMemcpyHtoD``/``cuLaunchKernel``/...).

It is deliberately *unprotected*: commands and data cross the OS in
plaintext, the OS maps GPU MMIO wherever it likes, and deallocated
device memory is not cleansed — the attack surface HIX closes.
"""

from repro.gdev.allocator import VramAllocator
from repro.gdev.api import GdevApi
from repro.gdev.driver import GdevContextHandle, GdevDriver, GdevModule, MmioChannel

__all__ = [
    "VramAllocator",
    "GdevDriver",
    "GdevContextHandle",
    "GdevModule",
    "MmioChannel",
    "GdevApi",
]
