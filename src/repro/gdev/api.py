"""CUDA-driver-API-shaped facade over the Gdev driver.

The paper's user code targets the CUDA driver API through Gdev, and the
HIX trusted runtime deliberately mirrors it ("provides an essential
application programming interface almost identical to the corresponding
CUDA driver API", Section 5.2).  Both the baseline and HIX facades
therefore expose the same method names, so workloads run unmodified on
either — exactly how the paper runs its comparisons.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.errors import DriverError
from repro.gdev.driver import GdevContextHandle, GdevDriver, GdevModule
from repro.gpu.module import CubinImage, DevPtr, ParamValue
from repro.obs.tracer import STATE as _OBS
from repro.osmodel.process import Process

HostBuffer = Union[bytes, bytearray, np.ndarray]


def _as_bytes(data: HostBuffer) -> bytes:
    if isinstance(data, np.ndarray):
        return data.tobytes()
    return bytes(data)


class GdevApi:
    """One process's CUDA-like session on the baseline driver."""

    #: True on facades that protect data end-to-end (the HIX runtime).
    secure = False

    def __init__(self, driver: GdevDriver, process: Process) -> None:
        self._driver = driver
        self._process = process
        self._ctx: Optional[GdevContextHandle] = None

    # -- lifecycle -------------------------------------------------------------

    def __enter__(self) -> "GdevApi":
        """Context-manager form: creates the context, destroys it on exit."""
        if self._ctx is None:
            self.cuCtxCreate()
        return self

    def __exit__(self, *exc) -> None:
        self.cuCtxDestroy()

    def cuInit(self) -> "GdevApi":
        return self

    def cuCtxCreate(self, shared: bool = False) -> "GdevApi":
        """Create a context; ``shared=True`` joins the MPS-style merged
        context (pre-Volta semantics, paper Section 4.5)."""
        if self._ctx is not None:
            raise DriverError("context already created")
        self._ctx = self._driver.create_context(self._process, shared=shared)
        self._shared = shared
        return self

    def cuCtxDestroy(self) -> None:
        if self._ctx is not None:
            if not getattr(self, "_shared", False):
                self._driver.destroy_context(self._ctx)
            self._ctx = None

    @property
    def ctx(self) -> GdevContextHandle:
        if self._ctx is None:
            raise DriverError("no current context (call cuCtxCreate)")
        return self._ctx

    # -- memory ------------------------------------------------------------------

    def cuMemAlloc(self, nbytes: int) -> DevPtr:
        return DevPtr(self._driver.malloc(self.ctx, nbytes))

    def cuMemFree(self, dptr: DevPtr) -> None:
        self._driver.free(self.ctx, dptr.addr)

    def cuMemcpyHtoD(self, dptr: DevPtr, data: HostBuffer) -> None:
        payload = _as_bytes(data)
        tracer = _OBS.tracer
        if tracer is None:
            return self._driver.memcpy_h2d(self.ctx, dptr.addr, payload)
        with tracer.span("gdev.cuMemcpyHtoD", "gdev", bytes=len(payload)):
            return self._driver.memcpy_h2d(self.ctx, dptr.addr, payload)

    def cuMemcpyDtoH(self, dptr: DevPtr, nbytes: int) -> bytes:
        tracer = _OBS.tracer
        if tracer is None:
            return self._driver.memcpy_d2h(self.ctx, dptr.addr, nbytes)
        with tracer.span("gdev.cuMemcpyDtoH", "gdev", bytes=nbytes):
            return self._driver.memcpy_d2h(self.ctx, dptr.addr, nbytes)

    # -- modules / kernels -----------------------------------------------------------

    def cuModuleLoad(self, kernel_names: Sequence[str]) -> GdevModule:
        return self._driver.load_module(self.ctx, CubinImage(list(kernel_names)))

    def cuLaunchKernel(self, module: GdevModule, kernel_name: str,
                       params: Sequence[ParamValue],
                       compute_seconds: float = 0.0) -> None:
        tracer = _OBS.tracer
        if tracer is None:
            return self._driver.launch(self.ctx, module, kernel_name, params,
                                       compute_seconds=compute_seconds)
        with tracer.span("gdev.cuLaunchKernel", "gdev", kernel=kernel_name):
            return self._driver.launch(self.ctx, module, kernel_name, params,
                                       compute_seconds=compute_seconds)
