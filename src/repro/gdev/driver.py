"""The Gdev driver core: MMIO command channel + resource management.

Two layers live here:

* :class:`MmioChannel` — the low-level "talk to the GPU through mapped
  MMIO" machinery (write commands into the BAR0 FIFO, ring the doorbell,
  poll status).  Both the baseline driver and the HIX GPU enclave use
  it; they differ only in *which process and privilege* the accesses are
  issued from — which is exactly the difference HIX's protection checks.
* :class:`GdevDriver` — the unsecure baseline: driver state lives in the
  OS kernel, commands and data cross in plaintext, MMIO is mapped into
  the kernel's address space.

Timing: the driver charges transfer and launch costs from the machine's
cost model (the device itself charges GPU-side compute and context
switches), so end-to-end simulated time decomposes the way the paper's
breakdowns do.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import DriverError
from repro.gdev.allocator import VramAllocator
from repro.gpu import regs
from repro.gpu.commands import CommandOpcode, encode_command
from repro.gpu.device import SimGpu
from repro.gpu.module import CubinImage, ParamValue, pack_params
from repro.osmodel.driver_stub import MmioRegion, map_gpu_mmio
from repro.osmodel.kernel import Kernel
from repro.osmodel.process import Process
from repro.pcie.root_complex import RootComplex

_GPU_VA_BASE = 0x1000_0000
_PARAM_BUF_SIZE = 4096


class MmioChannel:
    """Command submission through mapped MMIO (BAR0 regs + FIFO)."""

    def __init__(self, kernel: Kernel, process: Process,
                 regions: Dict[str, MmioRegion], gpu: SimGpu,
                 enclave_mode: bool = False, clock=None, costs=None) -> None:
        self._kernel = kernel
        self._process = process
        self._regions = regions
        self._gpu = gpu  # held for fault detail only; all control is via MMIO
        self._enclave_mode = enclave_mode
        self._clock = clock
        self._costs = costs

    @property
    def regions(self) -> Dict[str, MmioRegion]:
        return self._regions

    def _charge(self, seconds: float, category: str) -> None:
        if self._clock is not None:
            self._clock.advance(seconds, category)

    # -- raw register access -----------------------------------------------------

    def reg_read(self, offset: int, length: int = 4) -> int:
        va = self._regions["bar0"].vaddr + offset
        raw = self._kernel.cpu_read(self._process, va, length,
                                    enclave_mode=self._enclave_mode)
        if self._costs is not None:
            self._charge(self._costs.mmio_reg_latency, "mmio")
        return int.from_bytes(raw, "little")

    def reg_write(self, offset: int, value: int, length: int = 4) -> None:
        va = self._regions["bar0"].vaddr + offset
        self._kernel.cpu_write(self._process, va,
                               value.to_bytes(length, "little"),
                               enclave_mode=self._enclave_mode)
        if self._costs is not None:
            self._charge(self._costs.mmio_reg_latency, "mmio")

    # -- VRAM aperture (BAR1) ------------------------------------------------------

    def aperture_write(self, vram_pa: int, data: bytes) -> None:
        """Programmed-IO write into VRAM through the BAR1 window."""
        bar1 = self._regions["bar1"]
        view = memoryview(data)
        length = view.nbytes
        offset = 0
        while offset < length:
            window_base = (vram_pa + offset) & ~(regs.BAR1_SIZE - 1)
            self.reg_write(regs.REG_APERTURE_BASE, window_base, 8)
            in_window = min(length - offset,
                            regs.BAR1_SIZE - (vram_pa + offset - window_base))
            va = bar1.vaddr + (vram_pa + offset - window_base)
            self._kernel.cpu_write(self._process, va,
                                   view[offset:offset + in_window],
                                   enclave_mode=self._enclave_mode)
            offset += in_window
        if self._costs is not None:
            self._charge(self._costs.h2d_time(length, via_mmio=True),
                         "copy_mmio")

    def aperture_read(self, vram_pa: int, nbytes: int) -> bytes:
        bar1 = self._regions["bar1"]
        out = bytearray(nbytes)
        view = memoryview(out)
        offset = 0
        while offset < nbytes:
            window_base = (vram_pa + offset) & ~(regs.BAR1_SIZE - 1)
            self.reg_write(regs.REG_APERTURE_BASE, window_base, 8)
            in_window = min(nbytes - offset,
                            regs.BAR1_SIZE - (vram_pa + offset - window_base))
            va = bar1.vaddr + (vram_pa + offset - window_base)
            view[offset:offset + in_window] = self._kernel.cpu_read(
                self._process, va, in_window,
                enclave_mode=self._enclave_mode)
            offset += in_window
        if self._costs is not None:
            self._charge(self._costs.d2h_time(nbytes, via_mmio=True),
                         "copy_mmio")
        return bytes(out)

    # -- command submission -----------------------------------------------------------

    def submit(self, commands: Sequence[bytes]) -> None:
        """Write a batch into the FIFO, ring the doorbell, poll completion."""
        batch = b"".join(commands)
        if len(batch) > regs.FIFO_SIZE:
            raise DriverError("command batch exceeds FIFO window")
        fifo_va = self._regions["bar0"].vaddr + regs.FIFO_OFFSET
        self._kernel.cpu_write(self._process, fifo_va, batch,
                               enclave_mode=self._enclave_mode)
        self.reg_write(regs.REG_DOORBELL, len(batch))
        # MMIO-polling synchronization (Gdev design, paper Section 5.2).
        status = self.reg_read(regs.REG_STATUS)
        if status & 2:
            fault = self._gpu.pop_fault() or "unknown device fault"
            raise DriverError(f"GPU fault: {fault}")

    def read_expansion_rom(self, nbytes: int) -> bytes:
        rom = self._regions.get("rom")
        if rom is None:
            raise DriverError("GPU exposes no expansion ROM mapping")
        data = self._kernel.cpu_read(self._process, rom.vaddr,
                                     min(nbytes, rom.size),
                                     enclave_mode=self._enclave_mode)
        if self._costs is not None:
            self._charge(self._costs.d2h_time(len(data), via_mmio=True),
                         "mmio")
        return data


@dataclass
class GdevContextHandle:
    """Driver-side record of one GPU context."""

    ctx_id: int
    owner_pid: int
    va_cursor: int = _GPU_VA_BASE
    live_vas: Dict[int, Tuple[int, int]] = None  # gpu_va -> (vram_pa, size)
    param_va: int = 0  # persistent launch-parameter buffer (lazy)

    def __post_init__(self) -> None:
        if self.live_vas is None:
            self.live_vas = {}

    def reserve_va(self, nbytes: int) -> int:
        va = self.va_cursor
        self.va_cursor += (nbytes + 0xFFF) & ~0xFFF
        return va


@dataclass
class GdevModule:
    """A module resident in device memory."""

    image: CubinImage
    gpu_va: int
    nbytes: int


class GdevDriver:
    """The baseline (unsecure) GPU driver, resident in the OS kernel."""

    def __init__(self, kernel: Kernel, root_complex: RootComplex,
                 gpu: SimGpu, clock=None, costs=None,
                 process: Optional[Process] = None,
                 enclave_mode: bool = False,
                 regions: Optional[Dict[str, MmioRegion]] = None) -> None:
        """Baseline use: no *process* (driver lives in the kernel).

        The HIX GPU enclave reuses this driver by passing its own
        process, ``enclave_mode=True``, and the MMIO regions the benign
        kernel stub mapped for it; it also passes ``costs=None`` because
        the trusted runtime charges the secure path analytically.
        """
        self._kernel = kernel
        self._gpu = gpu
        self._clock = clock
        self._costs = costs
        self._process = process or kernel.kernel_process
        if regions is None:
            regions = map_gpu_mmio(kernel, root_complex, gpu.bdf, self._process)
        self.channel = MmioChannel(kernel, self._process, regions,
                                   gpu, enclave_mode=enclave_mode,
                                   clock=clock, costs=costs)
        vram_size = self._read_vram_size()
        self.vram = VramAllocator(vram_size)
        self._ctx_ids = itertools.count(1)
        self.contexts: Dict[int, GdevContextHandle] = {}
        self._mps_context: Optional[GdevContextHandle] = None
        # One shared DMA staging buffer (pinned memory in real Gdev).
        self._staging_size = 16 << 20
        _va, self._staging_pa = kernel.alloc_dma_buffer(
            self._process, self._staging_size)
        self._staging_va = _va
        self._enclave_mode = enclave_mode

    def _read_vram_size(self) -> int:
        low = self.channel.reg_read(regs.REG_VRAM_SIZE)
        high = self.channel.reg_read(regs.REG_VRAM_SIZE_HI)
        return (high << 32) | low

    def _charge(self, seconds: float, category: str) -> None:
        if self._clock is not None:
            self._clock.advance(seconds, category)

    # -- context lifecycle ---------------------------------------------------------

    def create_context(self, process: Process,
                       shared: bool = False) -> GdevContextHandle:
        """Create a GPU context for *process*.

        ``shared=True`` models the pre-Volta MPS behaviour the paper's
        Section 4.5 describes: "the pre-Volta MPS platform merges
        kernels from different user processes into a single GPU context
        ... a kernel can access the address range used by a different
        kernel."  All sharing processes get the *same* handle (and hence
        the same GPU address space) — the isolation hole HIX closes with
        per-user contexts.
        """
        if self._costs is not None:
            self._charge(self._costs.gdev_task_init, "task_init")
        if shared:
            if self._mps_context is None:
                self._mps_context = self._new_context(process)
            return self._mps_context
        return self._new_context(process)

    def _new_context(self, process: Process) -> GdevContextHandle:
        ctx_id = next(self._ctx_ids)
        self.channel.submit([
            encode_command(CommandOpcode.CTX_CREATE, ctx_id)])
        handle = GdevContextHandle(ctx_id=ctx_id, owner_pid=process.pid)
        self.contexts[ctx_id] = handle
        return handle

    def destroy_context(self, handle: GdevContextHandle,
                        cleanse: bool = False) -> None:
        commands: List[bytes] = []
        for gpu_va, (vram_pa, size) in sorted(handle.live_vas.items()):
            if cleanse:
                commands.append(encode_command(
                    CommandOpcode.MEM_CLEANSE, handle.ctx_id, (gpu_va, size)))
            commands.append(encode_command(
                CommandOpcode.UNMAP, handle.ctx_id, (gpu_va, size)))
            self.vram.free(vram_pa)
        commands.append(encode_command(CommandOpcode.CTX_DESTROY, handle.ctx_id))
        self.channel.submit(commands)
        handle.live_vas.clear()
        self.contexts.pop(handle.ctx_id, None)

    # -- memory management --------------------------------------------------------------

    def malloc(self, handle: GdevContextHandle, nbytes: int) -> int:
        vram_pa = self.vram.alloc(nbytes)
        gpu_va = handle.reserve_va(nbytes)
        self.channel.submit([encode_command(
            CommandOpcode.MAP, handle.ctx_id, (gpu_va, vram_pa, nbytes))])
        handle.live_vas[gpu_va] = (vram_pa, nbytes)
        return gpu_va

    def free(self, handle: GdevContextHandle, gpu_va: int,
             cleanse: bool = False) -> None:
        vram_pa, size = handle.live_vas.pop(gpu_va, (None, None))
        if vram_pa is None:
            raise DriverError(f"free of unknown device pointer {gpu_va:#x}")
        commands = []
        if cleanse:
            # HIX path: scrub before the block can be re-allocated
            # (Section 4.5); the Gdev baseline skips this.
            commands.append(encode_command(
                CommandOpcode.MEM_CLEANSE, handle.ctx_id, (gpu_va, size)))
        commands.append(encode_command(
            CommandOpcode.UNMAP, handle.ctx_id, (gpu_va, size)))
        self.channel.submit(commands)
        self.vram.free(vram_pa)

    # -- data movement ---------------------------------------------------------------------

    def memcpy_h2d(self, handle: GdevContextHandle, gpu_va: int,
                   data: bytes) -> None:
        """Host-to-device copy through the DMA staging buffer (plaintext)."""
        view = memoryview(data)
        length = view.nbytes
        offset = 0
        while offset < length:
            # Chunks are memoryview slices; nothing is copied on the way
            # to the staging write (the single-chunk common case passes
            # the caller's buffer straight through).
            chunk = view[offset:offset + self._staging_size]
            self._kernel.cpu_write(self._process, self._staging_va, chunk,
                                   enclave_mode=self._enclave_mode)
            self.channel.submit([encode_command(
                CommandOpcode.MEMCPY_H2D, handle.ctx_id,
                (self._staging_pa, gpu_va + offset, chunk.nbytes))])
            offset += chunk.nbytes
        if self._costs is not None:
            self._charge(self._costs.h2d_time(length), "copy_h2d")

    def memcpy_d2h(self, handle: GdevContextHandle, gpu_va: int,
                   nbytes: int) -> bytes:
        if nbytes <= self._staging_size:
            # Single-chunk fast path: the staging read is the result.
            self.channel.submit([encode_command(
                CommandOpcode.MEMCPY_D2H, handle.ctx_id,
                (gpu_va, self._staging_pa, nbytes))])
            result = self._kernel.cpu_read(self._process, self._staging_va,
                                           nbytes,
                                           enclave_mode=self._enclave_mode)
            if self._costs is not None:
                self._charge(self._costs.d2h_time(nbytes), "copy_d2h")
            return result
        out = bytearray(nbytes)
        view = memoryview(out)
        offset = 0
        while offset < nbytes:
            chunk = min(nbytes - offset, self._staging_size)
            self.channel.submit([encode_command(
                CommandOpcode.MEMCPY_D2H, handle.ctx_id,
                (gpu_va + offset, self._staging_pa, chunk))])
            view[offset:offset + chunk] = self._kernel.cpu_read(
                self._process, self._staging_va, chunk,
                enclave_mode=self._enclave_mode)
            offset += chunk
        if self._costs is not None:
            self._charge(self._costs.d2h_time(nbytes), "copy_d2h")
        return bytes(out)

    def vram_pa_of(self, handle: GdevContextHandle, gpu_va: int) -> int:
        """Device physical address behind a context-virtual allocation."""
        entry = handle.live_vas.get(gpu_va)
        if entry is None:
            raise DriverError(f"unknown device pointer {gpu_va:#x}")
        return entry[0]

    def memcpy_h2d_mmio(self, handle: GdevContextHandle, gpu_va: int,
                        data: bytes) -> None:
        """Host-to-device copy through the BAR1 aperture (no DMA).

        This is HIX's "directly writing data to the trusted MMIO that is
        mapped to the GPU memory" path (Section 4.4.2): bytes never
        transit untrusted host DRAM, so the GPU enclave uses it for
        module images and other driver-internal plaintext.
        """
        self.channel.aperture_write(self.vram_pa_of(handle, gpu_va), data)

    # -- modules and launches ------------------------------------------------------------------

    def load_module(self, handle: GdevContextHandle, image: CubinImage,
                    via_mmio: bool = False) -> GdevModule:
        raw = image.to_bytes()
        gpu_va = self.malloc(handle, len(raw))
        if via_mmio:
            self.memcpy_h2d_mmio(handle, gpu_va, raw)
        else:
            self.memcpy_h2d(handle, gpu_va, raw)
        return GdevModule(image=image, gpu_va=gpu_va, nbytes=len(raw))

    def launch(self, handle: GdevContextHandle, module: GdevModule,
               kernel_name: str, params: Sequence[ParamValue],
               compute_seconds: float = 0.0, via_mmio: bool = False) -> None:
        """Launch *kernel_name* with marshalled *params*.

        ``compute_seconds`` is the modeled GPU execution time for this
        launch (workloads calibrate it); the device charges it on the
        simulated clock.  ``via_mmio`` routes the parameter buffer through
        the trusted aperture (the HIX GPU enclave's choice).
        """
        index = module.image.index_of(kernel_name)
        blob = pack_params(list(params))
        # Reuse a persistent per-context parameter buffer (real drivers
        # keep a ring of these); large parameter sets fall back to a
        # transient allocation.
        transient = len(blob) > _PARAM_BUF_SIZE
        if transient:
            param_va = self.malloc(handle, len(blob))
        else:
            if not handle.param_va:
                handle.param_va = self.malloc(handle, _PARAM_BUF_SIZE)
            param_va = handle.param_va
        if via_mmio:
            self.memcpy_h2d_mmio(handle, param_va, blob)
        else:
            self.memcpy_h2d(handle, param_va, blob)
        if self._costs is not None:
            self._charge(self._costs.kernel_launch_gdev, "launch")
        self.channel.submit([encode_command(
            CommandOpcode.LAUNCH, handle.ctx_id,
            (module.gpu_va, module.nbytes, index, param_va, len(blob),
             int(compute_seconds * 1e9)))])
        if transient:
            self.free(handle, param_va)
