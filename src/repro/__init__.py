"""HIX: Heterogeneous Isolated Execution for Commodity GPUs (ASPLOS'19).

Full-system Python reproduction of Jang, Tang, Kim, Sethumadhavan, Huh:
a simulated SGX-capable host with the HIX hardware extensions
(EGCREATE/EGADD, GECS/TGMR, MMIO lockdown, the extended page-table
walker), a Fermi-class GPU, the Gdev baseline CUDA stack, and the HIX
GPU enclave + trusted user runtime on top.

Quickstart::

    from repro import Machine

    machine = Machine()
    service = machine.boot_hix()          # GPU enclave takes the GPU
    app = machine.hix_session(service)    # user enclave + trusted runtime
    app.cuCtxCreate()                     # attestation + 3-party DH
    buf = app.cuMemAlloc(4096)
    app.cuMemcpyHtoD(buf, b"secret" * 100)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured results of every table and figure.
"""

from repro.core.gpu_enclave import GpuEnclaveService
from repro.core.runtime import HixApi
from repro.gdev.api import GdevApi
from repro.gdev.driver import GdevDriver
from repro.gpu.module import DevPtr
from repro.serve import ServeEngine, TenantQuota
from repro.sim.costs import CostModel
from repro.system import Machine, MachineConfig

__version__ = "1.0.0"

__all__ = [
    "Machine",
    "MachineConfig",
    "CostModel",
    "GpuEnclaveService",
    "HixApi",
    "GdevApi",
    "GdevDriver",
    "DevPtr",
    "ServeEngine",
    "TenantQuota",
    "__version__",
]
