"""Exception hierarchy for the HIX reproduction.

Every layer of the simulated machine raises a subclass of
:class:`ReproError`, so callers can catch at whatever granularity they
need.  Security-relevant denials all derive from :class:`AccessDenied`
(hardware refused an access) or :class:`IntegrityError` (cryptographic
verification failed), mirroring the two protection mechanisms the paper
lists in its TCB table (access restriction vs. memory encryption).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the HIX reproduction."""


# ---------------------------------------------------------------------------
# Hardware-level errors
# ---------------------------------------------------------------------------

class HardwareError(ReproError):
    """Base class for simulated hardware faults."""


class BusError(HardwareError):
    """A physical address was not claimed by DRAM or any MMIO window."""


class AccessDenied(HardwareError):
    """The hardware refused an access (MMU, EPCM, TGMR, root complex)."""


class PageFault(HardwareError):
    """Virtual address has no valid translation in the page table."""


class TlbValidationError(AccessDenied):
    """The page-table walker rejected a translation (SGX/HIX checks)."""


# ---------------------------------------------------------------------------
# PCIe errors
# ---------------------------------------------------------------------------

class PcieError(HardwareError):
    """Base class for PCIe interconnect errors."""


class UnsupportedRequest(PcieError):
    """A TLP could not be routed or was rejected by its target."""


class ConfigWriteRejected(PcieError):
    """A config write was discarded by the MMIO lockdown filter."""


# ---------------------------------------------------------------------------
# SGX / HIX enclave errors
# ---------------------------------------------------------------------------

class SgxError(ReproError):
    """Base class for SGX instruction faults."""


class EnclaveStateError(SgxError):
    """Instruction issued in the wrong enclave lifecycle state."""


class EpcError(SgxError):
    """EPC exhaustion or invalid EPC page operation."""


class HixError(SgxError):
    """Base class for HIX instruction (EGCREATE/EGADD) faults."""


class GpuAlreadyOwned(HixError):
    """EGCREATE targeted a GPU already registered to a GPU enclave."""


class NotAGpu(HixError):
    """EGCREATE targeted a BDF that is not a real hardware GPU."""


class TgmrRegistrationError(HixError):
    """EGADD rejected an invalid virtual/physical MMIO address pair."""


# ---------------------------------------------------------------------------
# Crypto errors
# ---------------------------------------------------------------------------

class CryptoError(ReproError):
    """Base class for cryptographic failures."""


class IntegrityError(CryptoError):
    """Authenticated decryption failed (bad MAC) — tampering detected."""


class ReplayError(CryptoError):
    """A message arrived with a stale nonce — replay detected."""


class AttestationError(CryptoError):
    """Attestation evidence failed verification.

    Carries a structured ``error_kind`` so the serve resilience layer
    classifies backend boot/attest failures uniformly across TEE
    backends (HIX enclave measurement vs GPU-CC device certificates).
    """

    error_kind = "attestation_mismatch"


class CertChainError(AttestationError):
    """A device certificate chain did not verify back to the vendor root.

    GPU-CC attestation trusts a per-device key fused at manufacture and
    endorsed by the vendor CA; an emulated device can at best present a
    self-signed forgery, which fails here.
    """

    error_kind = "cert_chain_invalid"


# ---------------------------------------------------------------------------
# Driver / runtime errors
# ---------------------------------------------------------------------------

class DriverError(ReproError):
    """Base class for GPU driver (Gdev / HIX runtime) errors."""


class OutOfDeviceMemory(DriverError):
    """GPU VRAM allocator could not satisfy a request."""


class InvalidDevicePointer(DriverError):
    """A device pointer does not refer to a live allocation."""


class KernelNotFound(DriverError):
    """A launch referenced a kernel absent from the loaded module."""


class GpuUnavailable(DriverError):
    """The GPU is locked (e.g. after a GPU-enclave kill) or absent."""


class ProtocolError(DriverError):
    """Malformed or out-of-order inter-enclave request."""


class UnknownOperation(ProtocolError):
    """A sealed request named an op outside ``protocol.ALL_OPS``."""


class QueueFullError(ProtocolError):
    """A bounded message queue refused an enqueue (channel backlog)."""


class RequestRejected(DriverError):
    """The GPU enclave returned a structured error reply.

    Carries the reply's machine-readable ``code`` alongside the human
    message, so upper layers (the serving engine) can translate specific
    rejections — resource exhaustion, unknown ops — into their own
    flow-control semantics.
    """

    def __init__(self, message: str, code: str = "driver") -> None:
        super().__init__(message)
        self.code = code


# ---------------------------------------------------------------------------
# Serving-layer errors (repro.serve)
# ---------------------------------------------------------------------------

class ServeError(DriverError):
    """Base class for multi-tenant serving-layer failures."""


class AdmissionError(ServeError):
    """A tenant, session, or allocation was denied by quota/admission."""


class BackpressureError(ServeError):
    """A tenant's request queue is full — caller must retry later."""


class PlacementError(AdmissionError):
    """The fleet router could not place a session on any machine.

    A structured rejection: ``retry_after`` is the router's estimate
    (in virtual seconds) of when the least-loaded machine's backlog
    will have drained enough for a resubmission to succeed — derived
    from observed queue-drain rates, not just per-machine breaker
    cooldowns — and ``error_kind`` carries the resilience-layer
    failure class so clients can reuse their retry policies.
    """

    def __init__(self, message: str, retry_after: float = 0.0,
                 error_kind: str = "quota") -> None:
        super().__init__(message)
        self.retry_after = retry_after
        self.error_kind = error_kind


class RequestTimeout(ServeError):
    """A queued request exceeded its deadline before being served."""
