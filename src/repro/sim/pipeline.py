"""Pipelined-copy timing math (Section 5.2 of the paper).

HIX divides a large block into chunks and encrypts chunk *n+1* while
chunk *n* is in flight on PCIe, so steady-state throughput is set by the
slower stage and the faster stage hides behind it.  These helpers compute
the makespan of a k-stage chunked pipeline, which the secure memcpy path
uses to charge simulated time.

Two evaluations of the same model live here.
:func:`pipelined_time` is the closed form — what the HIX runtime
charges, kept as the charge source so figure outputs stay bit-identical
across the kernel unification.  :func:`pipelined_time_events` executes
the pipeline on the shared discrete-event kernel
(:mod:`repro.sim.engine`): each chunk is a :class:`~repro.sim.engine.Process`
acquiring the stage :class:`~repro.sim.engine.Resource`\\ s in order.
The two are the *same* makespan — exactly equal in exact (Fraction)
arithmetic, where float rounding cannot intrude; the property suite
pins that identity, which is what licenses the runtime to keep charging
the closed form.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.sim.engine import Acquire, EventClock, Process, Resource, Visit, Wait


def serial_time(nbytes: float, stage_bandwidths: Sequence[float],
                stage_latencies: Sequence[float] = ()) -> float:
    """Makespan when the stages run back to back with no overlap."""
    if nbytes < 0:
        raise ValueError("nbytes must be non-negative")
    total = sum(stage_latencies)
    for bandwidth in stage_bandwidths:
        if bandwidth <= 0:
            raise ValueError("stage bandwidth must be positive")
        total += nbytes / bandwidth
    return total


def pipelined_time(nbytes: float, stage_bandwidths: Sequence[float],
                   chunk_bytes: float,
                   stage_latencies: Sequence[float] = ()) -> float:
    """Makespan of a chunked pipeline over *nbytes*.

    With ``n`` equal chunks and per-chunk stage times ``t_i``, the classic
    pipeline makespan is ``sum_i(t_i) + (n - 1) * max_i(t_i)`` — one fill
    pass plus steady state at the bottleneck rate.  Fixed per-stage
    latencies are paid once (they model setup, not per-chunk work).
    """
    if nbytes < 0:
        raise ValueError("nbytes must be non-negative")
    if chunk_bytes <= 0:
        raise ValueError("chunk_bytes must be positive")
    if not stage_bandwidths:
        return sum(stage_latencies)
    if nbytes == 0:
        return sum(stage_latencies)

    full_chunks, tail = divmod(nbytes, chunk_bytes)
    num_chunks = int(full_chunks) + (1 if tail else 0)
    chunk_times = []
    for bandwidth in stage_bandwidths:
        if bandwidth <= 0:
            raise ValueError("stage bandwidth must be positive")
        chunk_times.append(chunk_bytes / bandwidth)

    bottleneck = max(chunk_times)
    fill = sum(chunk_times)
    if num_chunks == 1:
        # A single (possibly short) chunk degenerates to the serial case.
        return sum(stage_latencies) + sum(nbytes / b for b in stage_bandwidths)

    # Steady state: (n-1) chunks at the bottleneck rate.  The final
    # partial chunk still occupies a full pipeline slot, which slightly
    # over-charges; that conservatism is deliberate (DMA descriptors are
    # fixed-size in the real engine).
    return sum(stage_latencies) + fill + (num_chunks - 1) * bottleneck


def pipelined_times(nbytes: Sequence[float],
                    stage_bandwidths: Sequence[float],
                    chunk_bytes: float,
                    stage_latencies: Sequence[float] = ()) -> "np.ndarray":
    """Vectorized :func:`pipelined_time` over an array of transfer sizes.

    Elementwise **bit-identical** to calling the scalar closed form on
    each size: every term is accumulated in the same float association
    order (serial case: ``0 + n/b0 + n/b1 + ...``; multi-chunk case:
    ``(setup + fill) + (n_chunks - 1) * bottleneck``), so the batched
    sealed-memcpy path can charge many per-item transfers in one pass
    without perturbing simulated time.
    """
    sizes = np.asarray(nbytes, dtype=np.float64)
    if sizes.size and float(sizes.min()) < 0:
        raise ValueError("nbytes must be non-negative")
    if chunk_bytes <= 0:
        raise ValueError("chunk_bytes must be positive")
    setup = sum(stage_latencies)
    if not stage_bandwidths:
        return np.full(sizes.shape, setup, dtype=np.float64)
    for bandwidth in stage_bandwidths:
        if bandwidth <= 0:
            raise ValueError("stage bandwidth must be positive")

    full_chunks, tail = np.divmod(sizes, chunk_bytes)
    num_chunks = full_chunks.astype(np.int64) + (tail != 0)
    chunk_times = [chunk_bytes / bandwidth for bandwidth in stage_bandwidths]
    bottleneck = max(chunk_times)
    fill = sum(chunk_times)

    serial = np.zeros_like(sizes)
    for bandwidth in stage_bandwidths:
        serial = serial + sizes / bandwidth
    single = setup + serial
    multi = (setup + fill) + (num_chunks - 1) * bottleneck
    return np.where(num_chunks <= 1, single, multi)


def pipelined_time_events(nbytes: float, stage_bandwidths: Sequence[float],
                          chunk_bytes: float,
                          stage_latencies: Sequence[float] = ()) -> float:
    """:func:`pipelined_time`, executed on the discrete-event kernel.

    Each chunk is a kernel :class:`~repro.sim.engine.Process` that
    acquires the stage :class:`~repro.sim.engine.Resource`\\ s in order;
    stage latencies are setup paid once, so every chunk enters stage 0
    after a single ``sum(stage_latencies)`` wait.  With uniform per-chunk
    service times the cascade closes to exactly
    ``setup + sum(t_i) + (n - 1) * max(t_i)`` — the closed form — and
    the single-chunk case degenerates to the serial pass over the actual
    byte count, again matching :func:`pipelined_time` term for term.

    The identity is exact in exact arithmetic: feed ``Fraction`` inputs
    and the result equals ``pipelined_time`` bit for bit (the property
    suite pins this).  Under floats the two evaluations associate
    additions differently and may differ in the last ulp, which is why
    the runtime keeps charging the closed form.
    """
    if nbytes < 0:
        raise ValueError("nbytes must be non-negative")
    if chunk_bytes <= 0:
        raise ValueError("chunk_bytes must be positive")
    setup = sum(stage_latencies)
    if not stage_bandwidths or nbytes == 0:
        return setup
    for bandwidth in stage_bandwidths:
        if bandwidth <= 0:
            raise ValueError("stage bandwidth must be positive")

    full_chunks, tail = divmod(nbytes, chunk_bytes)
    num_chunks = int(full_chunks) + (1 if tail else 0)
    # The closed form charges every multi-chunk slot a full chunk time
    # (tail occupies a full DMA descriptor); a lone chunk is serial over
    # the actual bytes.
    size = nbytes if num_chunks == 1 else chunk_bytes
    stage_times = [size / bandwidth for bandwidth in stage_bandwidths]

    kernel = EventClock()
    # ctx_switch_cost=0 (int, not 0.0): keeps Fraction inputs exact.
    stages = [Resource(kernel, 0) for _ in stage_bandwidths]
    finish_times: list = []

    def chunk(index: int):
        yield Wait(setup)
        for stage, service in zip(stages, stage_times):
            yield Acquire(stage, Visit(
                tenant=index, seq=index, ready=kernel.now,
                gpu_seconds=service, label=f"chunk{index}"))
        finish_times.append(kernel.now)

    for index in range(num_chunks):
        Process(kernel, chunk(index), name=f"chunk{index}").start(0)
    kernel.run()
    return max(finish_times)


def effective_bandwidth(nbytes: float, stage_bandwidths: Sequence[float],
                        chunk_bytes: float) -> float:
    """Effective end-to-end bytes/second of the chunked pipeline."""
    makespan = pipelined_time(nbytes, stage_bandwidths, chunk_bytes)
    if makespan <= 0:
        raise ValueError("cannot compute bandwidth for empty transfer")
    return nbytes / makespan
