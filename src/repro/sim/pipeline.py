"""Pipelined-copy timing math (Section 5.2 of the paper).

HIX divides a large block into chunks and encrypts chunk *n+1* while
chunk *n* is in flight on PCIe, so steady-state throughput is set by the
slower stage and the faster stage hides behind it.  These helpers compute
the makespan of a k-stage chunked pipeline, which the secure memcpy path
uses to charge simulated time.
"""

from __future__ import annotations

from typing import Sequence


def serial_time(nbytes: float, stage_bandwidths: Sequence[float],
                stage_latencies: Sequence[float] = ()) -> float:
    """Makespan when the stages run back to back with no overlap."""
    if nbytes < 0:
        raise ValueError("nbytes must be non-negative")
    total = sum(stage_latencies)
    for bandwidth in stage_bandwidths:
        if bandwidth <= 0:
            raise ValueError("stage bandwidth must be positive")
        total += nbytes / bandwidth
    return total


def pipelined_time(nbytes: float, stage_bandwidths: Sequence[float],
                   chunk_bytes: float,
                   stage_latencies: Sequence[float] = ()) -> float:
    """Makespan of a chunked pipeline over *nbytes*.

    With ``n`` equal chunks and per-chunk stage times ``t_i``, the classic
    pipeline makespan is ``sum_i(t_i) + (n - 1) * max_i(t_i)`` — one fill
    pass plus steady state at the bottleneck rate.  Fixed per-stage
    latencies are paid once (they model setup, not per-chunk work).
    """
    if nbytes < 0:
        raise ValueError("nbytes must be non-negative")
    if chunk_bytes <= 0:
        raise ValueError("chunk_bytes must be positive")
    if not stage_bandwidths:
        return sum(stage_latencies)
    if nbytes == 0:
        return sum(stage_latencies)

    full_chunks, tail = divmod(nbytes, chunk_bytes)
    num_chunks = int(full_chunks) + (1 if tail else 0)
    chunk_times = []
    for bandwidth in stage_bandwidths:
        if bandwidth <= 0:
            raise ValueError("stage bandwidth must be positive")
        chunk_times.append(chunk_bytes / bandwidth)

    bottleneck = max(chunk_times)
    fill = sum(chunk_times)
    if num_chunks == 1:
        # A single (possibly short) chunk degenerates to the serial case.
        return sum(stage_latencies) + sum(nbytes / b for b in stage_bandwidths)

    # Steady state: (n-1) chunks at the bottleneck rate.  The final
    # partial chunk still occupies a full pipeline slot, which slightly
    # over-charges; that conservatism is deliberate (DMA descriptors are
    # fixed-size in the real engine).
    return sum(stage_latencies) + fill + (num_chunks - 1) * bottleneck


def effective_bandwidth(nbytes: float, stage_bandwidths: Sequence[float],
                        chunk_bytes: float) -> float:
    """Effective end-to-end bytes/second of the chunked pipeline."""
    makespan = pipelined_time(nbytes, stage_bandwidths, chunk_bytes)
    if makespan <= 0:
        raise ValueError("cannot compute bandwidth for empty transfer")
    return nbytes / makespan
