"""Simulated clock with per-category time accounting.

Every timed operation in the machine (PCIe transfer, AES pass, kernel
execution, enclave transition, ...) charges simulated seconds to the
machine's :class:`SimClock`, tagged with a category string.  The
evaluation harness reads both the total elapsed time and the breakdown —
the breakdown is what lets the figure generators decompose execution the
way the paper's Figure 6/7 bars do (init / copy / crypto / compute).
"""

from __future__ import annotations

from collections import defaultdict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple


@dataclass
class TimeBreakdown:
    """Immutable snapshot of per-category simulated time."""

    total: float
    by_category: Dict[str, float]

    def fraction(self, category: str) -> float:
        """Return the share of total time spent in *category* (0 if none)."""
        if self.total <= 0.0:
            return 0.0
        return self.by_category.get(category, 0.0) / self.total

    def split(self, categories) -> Tuple[float, float]:
        """Partition the total: (time in *categories*, time elsewhere).

        Used by the serving engine to separate GPU-engine-exclusive
        charges (compute, dispatch, in-GPU crypto) from overlappable
        host-side work when scheduling tenants onto one device.
        """
        matched = sum(seconds for category, seconds
                      in self.by_category.items() if category in categories)
        return matched, self.total - matched

    def __sub__(self, earlier: "TimeBreakdown") -> "TimeBreakdown":
        cats: Dict[str, float] = dict(earlier.by_category)
        merged = {
            key: self.by_category.get(key, 0.0) - cats.get(key, 0.0)
            for key in set(self.by_category) | set(cats)
        }
        merged = {key: value for key, value in merged.items() if value != 0.0}
        return TimeBreakdown(self.total - earlier.total, merged)


class SimClock:
    """Monotonic simulated clock with category accounting.

    The clock is a plain accumulator: ``advance(dt, category)`` moves
    simulated time forward.  Concurrency (e.g. multi-user GPU sharing) is
    handled by the discrete-event kernel in :mod:`repro.sim.engine`,
    which computes makespans from per-operation durations rather than by
    advancing a shared clock from multiple actors; the kernel's
    :class:`~repro.sim.engine.EventClock` exposes this class's listener
    surface, so trace consumers work against either clock.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._by_category: Dict[str, float] = defaultdict(float)
        self._marks: List[Tuple[str, float]] = []
        self._listeners: List = []
        self._suppressed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def add_listener(self, listener) -> None:
        """Register ``listener(start, seconds, category)`` for every charge.

        Used by :class:`~repro.sim.trace.TraceRecorder` to build execution
        timelines without instrumenting every call site.
        """
        self._listeners.append(listener)

    def remove_listener(self, listener) -> None:
        self._listeners.remove(listener)

    def advance(self, seconds: float, category: str = "other") -> float:
        """Charge *seconds* of simulated time to *category*.

        Returns the new simulated time.  Negative charges are rejected —
        simulated time is monotonic.
        """
        if seconds < 0.0:
            raise ValueError(f"cannot advance clock by {seconds!r} seconds")
        if self._suppressed:
            return self._now
        start = self._now
        self._now += seconds
        self._by_category[category] += seconds
        for listener in self._listeners:
            listener(start, seconds, category)
        return self._now

    @contextmanager
    def suppressed(self):
        """Discard every charge made inside the ``with`` block.

        Used by the serving fast path to *functionally* replay deferred
        (memoized) requests: the real bytes still move through the
        sealed protocol, but their virtual time was already charged from
        the memo, so the replay must not advance the clock again.
        """
        self._suppressed += 1
        try:
            yield self
        finally:
            self._suppressed -= 1

    def mark(self, label: str) -> None:
        """Record a named timestamp (useful for debugging traces)."""
        self._marks.append((label, self._now))

    @property
    def marks(self) -> List[Tuple[str, float]]:
        return list(self._marks)

    def snapshot(self) -> TimeBreakdown:
        """Return an immutable snapshot of the accounting so far."""
        return TimeBreakdown(self._now, dict(self._by_category))

    def elapsed_since(self, snap: TimeBreakdown) -> TimeBreakdown:
        """Return the time charged since *snap* was taken."""
        return self.snapshot() - snap

    def categories(self) -> Iterator[Tuple[str, float]]:
        return iter(sorted(self._by_category.items()))

    def reset(self) -> None:
        """Zero the clock (used between benchmark repetitions)."""
        self._now = 0.0
        self._by_category.clear()
        self._marks.clear()


@dataclass
class StopwatchResult:
    """Result of timing a callable against a :class:`SimClock`.

    The per-category breakdown lives in ``elapsed.by_category``.
    """

    value: object
    elapsed: TimeBreakdown


def time_call(clock: SimClock, fn, *args, **kwargs) -> StopwatchResult:
    """Run ``fn(*args, **kwargs)`` and report the simulated time it charged."""
    before = clock.snapshot()
    value = fn(*args, **kwargs)
    return StopwatchResult(value=value, elapsed=clock.elapsed_since(before))
