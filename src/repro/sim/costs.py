"""Calibrated cost model for the simulated HIX testbed.

All timing in the reproduction flows through one :class:`CostModel`
instance attached to the machine.  The defaults are calibrated to the
paper's testbed (Table 3: i7-6700 + NVIDIA GTX 580 over PCIe 2.0 x16,
SGX SDK 2.0 / SGX-SSL) so that the *shapes* of Figures 6-9 hold:

* matrix addition ~2.5x slower under HIX (crypto-bound),
* matrix multiplication @11264 only ~6.3% slower (compute-bound),
* Rodinia mean overhead ~26.8% with BP/NW/PF the worst cases and
  HS/LUD/NN slightly *faster* under HIX (lower task-init cost),
* multi-user HIX ~45%/~40% worse than parallel Gdev at 2/4 users.

Absolute seconds are not expected to match the 2019 testbed; see
EXPERIMENTS.md for paper-vs-measured values per experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

GB = float(1 << 30)
MB = float(1 << 20)
KB = float(1 << 10)

US = 1e-6
MS = 1e-3


@dataclass
class CostModel:
    """Tunable timing parameters of the simulated testbed.

    Bandwidths are bytes/second, latencies are seconds.  Every parameter
    carries the calibration rationale in a trailing comment.
    """

    # --- PCIe interconnect (PCIe 2.0 x16, GTX-580 era effective rates) ---
    pcie_h2d_bandwidth: float = 6.0 * GB      # host->device DMA, effective
    pcie_d2h_bandwidth: float = 5.0 * GB      # device->host DMA, effective
    pcie_mmio_bandwidth: float = 0.7 * GB     # programmed-IO through BAR1
    mmio_reg_latency: float = 1.0 * US        # one BAR0 register read/write
    config_access_latency: float = 2.0 * US   # one PCIe config TLP
    dma_setup_latency: float = 8.0 * US       # descriptor write + doorbell

    # --- CPU-side cryptography (SGX-SSL OCB-AES-128 w/ AES-NI) ---
    cpu_aead_bandwidth: float = 1.9 * GB      # enclave encrypt or decrypt
    cpu_aead_setup_latency: float = 1.0 * US  # per-message nonce/offset setup
    cpu_hash_bandwidth: float = 3.0 * GB      # SHA-256 measurement rate

    # --- GPU-side cryptography (OCB-AES CUDA kernels on Fermi) ---
    gpu_aead_bandwidth: float = 8.0 * GB      # in-GPU encrypt/decrypt kernel
    gpu_aead_kernel_latency: float = 40.0 * US  # crypto kernel launch+drain
    # Under concurrent multi-user service the crypto kernels run on small
    # per-chunk batches that underutilize the SMs (Section 5.4: "resource
    # underutilization for small data cryptography"), so their effective
    # throughput drops by this factor in the multi-user model.
    gpu_aead_multiuser_efficiency: float = 0.5

    # --- GPU-CC backend (H100-style confidential computing) --------------
    # On-die AES-GCM engine sits next to the copy engines: near line rate,
    # fixed-function (no kernel launch, no SM occupancy).
    gpucc_engine_bandwidth: float = 12.0 * GB
    gpucc_engine_latency: float = 8.0 * US
    # Staging copy through the unprotected bounce region the untrusted
    # driver DMAs from (ciphertext only ever crosses it).
    gpucc_bounce_bandwidth: float = 11.0 * GB
    # A fixed-function engine loses less throughput on small per-chunk
    # batches than HIX's SM-resident crypto kernels do.
    gpucc_aead_multiuser_efficiency: float = 0.85

    # --- Copy pipelining (Section 5.2: chunked encrypt || transfer) ---
    pipeline_chunk_bytes: int = 4 * int(MB)

    # --- Driver / task lifecycle ---
    gdev_task_init: float = 30.0 * MS   # cuInit+ctx create+module load (Gdev)
    hix_task_init: float = 13.0 * MS    # driver resident in GPU enclave
    session_setup: float = 5.5 * MS     # local attestation + 3-party DH
    kernel_launch_gdev: float = 60.0 * US   # ioctl + driver submission
    kernel_launch_hix: float = 35.0 * US    # user-level queue beats the ioctl
    memcpy_request_overhead_hix: float = 25.0 * US  # encrypted metadata msg
    enclave_transition: float = 2.0 * US    # EENTER/EEXIT pair
    msgqueue_hop: float = 3.0 * US          # wake + dequeue, one direction
    # GPU-CC lifecycle: plain (untrusted) kernel driver, so task init is
    # cheaper than HIX's in-enclave Gdev, but session setup pays the
    # cert-chain fetch/verify + SPDM-style device attestation instead of
    # a local SGX report.
    gpucc_task_init: float = 16.0 * MS
    gpucc_session_setup: float = 9.0 * MS
    kernel_launch_gpucc: float = 45.0 * US  # sealed submit via untrusted KMD
    memcpy_request_overhead_gpucc: float = 18.0 * US

    # --- GPU execution engine ---
    gpu_context_switch: float = 120.0 * US  # Fermi ctx save/restore
    gpu_memory_cleanse_bandwidth: float = 48.0 * GB  # VRAM zeroing rate
    gpu_kernel_dispatch: float = 5.0 * US   # on-device scheduling cost

    # --- Multi-tenant serving layer (repro.serve) ---
    # One scheduling decision + queue bookkeeping per dispatched request;
    # charged on the host side of the request (the GPU enclave's serving
    # loop runs on the CPU, like the msgqueue hops above).
    serve_dispatch_latency: float = 2.0 * US
    # Deficit round-robin quantum: GPU-engine seconds granted per tenant
    # per scheduler round.  Sized to one pipeline chunk's in-GPU crypto
    # pass (4 MiB / 8 GBps + launch drain) so a single bulk chunk never
    # needs more than two rounds of credit.
    serve_fair_quantum: float = 600.0 * US

    # --- SGX microcode (emulated via VM exits in the paper's prototype) ---
    sgx_instruction_latency: float = 3.0 * US   # ECREATE/EADD/EGADD etc.
    epc_page_add_latency: float = 1.5 * US      # per EADD'd page

    # --- Functional-vs-modeled data scaling --------------------------------
    # Workloads move real bytes at reduced scale; the clock is charged for
    # `real_bytes * data_inflation` so modeled sizes match the paper.
    data_inflation: float = 1.0

    extras: Dict[str, float] = field(default_factory=dict)

    # -- derived helpers ----------------------------------------------------

    def scaled(self, nbytes: int) -> float:
        """Modeled byte count for *nbytes* real bytes."""
        return nbytes * self.data_inflation

    def h2d_time(self, nbytes: int, via_mmio: bool = False) -> float:
        """Seconds to move *nbytes* (modeled) host->device, excluding crypto."""
        bandwidth = self.pcie_mmio_bandwidth if via_mmio else self.pcie_h2d_bandwidth
        return self.dma_setup_latency + self.scaled(nbytes) / bandwidth

    def d2h_time(self, nbytes: int, via_mmio: bool = False) -> float:
        bandwidth = self.pcie_mmio_bandwidth if via_mmio else self.pcie_d2h_bandwidth
        return self.dma_setup_latency + self.scaled(nbytes) / bandwidth

    def cpu_aead_time(self, nbytes: int) -> float:
        """Seconds for one CPU-side authenticated encrypt/decrypt pass."""
        return self.cpu_aead_setup_latency + self.scaled(nbytes) / self.cpu_aead_bandwidth

    def gpu_aead_time(self, nbytes: int) -> float:
        """Seconds for one in-GPU crypto kernel over *nbytes* (modeled)."""
        return self.gpu_aead_kernel_latency + self.scaled(nbytes) / self.gpu_aead_bandwidth

    def cleanse_time(self, nbytes: int) -> float:
        """Seconds to zero *nbytes* of VRAM on deallocation/context teardown."""
        return self.scaled(nbytes) / self.gpu_memory_cleanse_bandwidth

    def rpc_round_trip(self) -> float:
        """One sealed request/reply round trip over the untrusted channel."""
        return (2 * self.msgqueue_hop + 2 * self.enclave_transition
                + 2 * self.cpu_aead_setup_latency)

    def rpc_round_trip_gpucc(self) -> float:
        """GPU-CC sealed round trip: no enclave to enter, so the
        EENTER/EEXIT pair drops out; everything else is identical."""
        return 2 * self.msgqueue_hop + 2 * self.cpu_aead_setup_latency

    def gpucc_engine_time(self, nbytes: int) -> float:
        """Seconds for one on-die AEAD engine pass over *nbytes* (modeled)."""
        return (self.gpucc_engine_latency
                + self.scaled(nbytes) / self.gpucc_engine_bandwidth)

    def aead_multiuser_efficiency(self, backend: str = "hix") -> float:
        """Multi-user derate of the backend's GPU-side crypto stage."""
        if backend == "gpucc":
            return self.gpucc_aead_multiuser_efficiency
        return self.gpu_aead_multiuser_efficiency

    def launch_overhead(self, mode: str) -> float:
        """Driver-visible cost of one kernel launch, beyond GPU compute.

        *mode* is ``"gdev"`` (ioctl + param-buffer DMA + FIFO kick +
        status poll), ``"hix"`` (sealed round trip + trusted-MMIO param
        write) or ``"gpucc"`` (sealed round trip through the untrusted
        KMD + param staging via the bounce DMA path — no trusted MMIO
        exists under the CC firewall).  Shared by the evalkit harness's
        launch-count correction and the serving layer's job builder, so
        both charge elided launches identically.
        """
        if mode == "gdev":
            return (self.kernel_launch_gdev + self.dma_setup_latency
                    + 4 * self.mmio_reg_latency)
        if mode == "hix":
            return (self.kernel_launch_hix + self.rpc_round_trip()
                    + 4 * self.mmio_reg_latency)
        if mode == "gpucc":
            return (self.kernel_launch_gpucc + self.rpc_round_trip_gpucc()
                    + self.dma_setup_latency)
        raise ValueError(
            f"mode must be 'gdev', 'hix' or 'gpucc', got {mode!r}")

    def with_overrides(self, **overrides: float) -> "CostModel":
        """Return a copy with the given parameters replaced (for ablations)."""
        return replace(self, **overrides)
