"""The discrete-event kernel every timing layer runs on.

One heap, one arbitration discipline, three client surfaces: the
analytic multi-user model (:func:`repro.core.multiuser.simulate_concurrent`),
the serving layer's virtual-time multiplexer
(:func:`repro.serve.timeline.multiplex`), and the pipelined seal+transfer
makespan (:mod:`repro.sim.pipeline`) are all thin adapters over the
primitives here.  Before this kernel existed each of those layers had
its own event loop, and two of them disagreed on simultaneous-event
tie-breaks; the kernel's single ordering rule makes FIFO serving
*exactly* equal to the retired oracle on every input (see
``tests/property/test_prop_engine.py``).

Primitives
----------

:class:`EventClock`
    The event heap plus virtual ``now``.  Exposes the same
    ``add_listener``/``remove_listener`` surface as
    :class:`repro.sim.clock.SimClock`, so a
    :class:`repro.sim.trace.TraceRecorder` attaches to virtual time
    unchanged.
:class:`Process`
    A generator wrapped into the event loop.  The generator ``yield``\\ s
    :class:`Wait` (timed suspension), :class:`Acquire` (submit a
    :class:`Visit` to a :class:`Resource` and suspend until it is served
    or expires), or :data:`BLOCK` (suspend until resumed externally).
:class:`Resource`
    An exclusive engine (the GPU execution engine, or one pipeline
    stage).  Per-lane FIFO queues, a pluggable scheduler over the queue
    heads, a context-switch charge on owner change, and lazy deadline
    expiry at dispatch time.

Ordering rule (the tie-break fix)
---------------------------------

Events order by ``(time, priority, seq)`` with ``seq`` allocated
monotonically — FIFO-arrival order, with lane index seeding the order
at t=0.  Three mechanisms make FIFO dispatch reproduce the retired
oracle's pop order — which pre-reserved the engine the moment a GPU
event popped — on *all* inputs, ties included:

1. a visit arriving while the engine is free is served synchronously
   inside its own arrival event (the oracle served at pop), so its
   lane's continuation re-enters the heap before any later same-time
   event allocates a rank;
2. when the engine frees at time ``F``, the dispatch decision runs at
   ``(F, PRIO_DISPATCH)`` — *before* normal events at ``F`` — because
   the oracle granted those slots at earlier pops;
3. every queued visit pre-allocates its continuation seq at arrival
   (:meth:`Resource.submit`), and its lane resumes *inside* the
   completion event carrying that seq, so the lane's next visit
   competes under the rank the oracle would have allocated at that pop.

FIFO then selects ``min (ready, seq)`` over the queue heads, which is
exactly heap pop order of the arrival events.

The retired serving multiplexer used the opposite rule — drain every
same-instant event, then arbitrate — and on simultaneous events the two
rules hand a *stateful* scheduler (DRR credit, round-robin rotation)
different candidate sets.  That divergence was declared fixed in the
analytic oracle's favor; the differential suite therefore compares
non-FIFO schedulers against the retired multiplexer only on timelines
with no coincident instants (see ``tie_free_users`` and its
rounding-collapse filter in ``tests/property/test_prop_engine.py``).
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Callable,
    Deque,
    Dict,
    Generator,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.obs import metrics as obs_metrics
from repro.obs.tracer import STATE as _OBS
from repro.sim.trace import TraceEvent

#: Engine-free dispatch decisions pop before same-time normal events:
#: the slots they hand out were promised at earlier pops (the oracle's
#: pre-reservation order).
PRIO_DISPATCH = 0
#: Process resumes, visit arrivals, completions.
PRIO_NORMAL = 1
#: Re-dispatch after deadline expiry: drain same-time resumes first,
#: matching the retired multiplexer's drain-then-dispatch loop.
PRIO_REDISPATCH = 2


class Event:
    """One scheduled entry in the kernel heap.

    A plain slotted object rather than a dataclass: the kernel allocates
    one per scheduled step and :class:`EventClock` recycles drained
    entries through a freelist, so construction, comparison, and reuse
    stay allocation-free on the hot path.  ``fn`` is the callback the
    heap invokes; it is cleared when the entry is recycled.
    """

    __slots__ = ("time", "priority", "seq", "fn")

    def __init__(self, time: float, priority: int, seq: int,
                 fn: Optional[Callable[["Event"], None]] = None) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Event(time={self.time!r}, priority={self.priority!r}, "
                f"seq={self.seq!r})")


class EventClock:
    """Virtual time: an event heap with SimClock's listener surface.

    Listeners receive ``(start, seconds, category)`` exactly as
    :class:`repro.sim.clock.SimClock` emits them, so a ``TraceRecorder``
    (or any other charge consumer) attaches to a kernel run unchanged.
    Unlike ``SimClock``, time here advances by popping events, not by
    ``advance`` calls; charges describe work the processes placed on
    the timeline.
    """

    def __init__(self) -> None:
        self.now: float = 0
        self._heap: List[Event] = []
        self._free: List[Event] = []
        self._seq = itertools.count()
        self._listeners: List[Callable[[float, float, str], None]] = []
        self.events_processed = 0
        # The process-wide registry counter is resolved once per kernel;
        # run() batches into a local and flushes one add.
        self._events_counter = obs_metrics.registry().counter(
            "engine.events_processed")

    # -- seq allocation (the tie-break currency) ------------------------------

    def allocate_seq(self) -> int:
        """Claim the next position in arrival order."""
        return next(self._seq)

    # -- scheduling -----------------------------------------------------------

    def schedule(self, time: float, fn: Callable[[Event], None], *,
                 priority: int = PRIO_NORMAL,
                 seq: Optional[int] = None) -> Event:
        """Schedule ``fn(event)`` at ``time``; returns the heap entry.

        ``seq`` defaults to a fresh allocation; passing a pre-allocated
        seq is how continuations keep their arrival-order rank.

        The returned entry is recycled once its callback has run; do not
        retain it past the callback.
        """
        if seq is None:
            seq = self.allocate_seq()
        free = self._free
        if free:
            event = free.pop()
            event.time = time
            event.priority = priority
            event.seq = seq
            event.fn = fn
        else:
            event = Event(time, priority, seq, fn)
        heapq.heappush(self._heap, event)
        return event

    def run(self) -> float:
        """Drain the heap; returns the final virtual time."""
        heap = self._heap
        free = self._free
        processed = 0
        while heap:
            event = heapq.heappop(heap)
            self.now = event.time
            event.fn(event)
            event.fn = None
            free.append(event)
            processed += 1
        if processed:
            self.events_processed += processed
            self._events_counter.inc(processed)
        return self.now

    # -- SimClock-compatible charge surface -----------------------------------

    def charge(self, start: float, seconds: float, category: str) -> None:
        """Report ``seconds`` of ``category`` work starting at ``start``."""
        for listener in list(self._listeners):
            listener(start, seconds, category)

    def add_listener(self,
                     listener: Callable[[float, float, str], None]) -> None:
        self._listeners.append(listener)

    def remove_listener(self,
                        listener: Callable[[float, float, str], None]) -> None:
        self._listeners.remove(listener)


@dataclass(slots=True)
class Visit:
    """A pending exclusive-engine visit; per-lane queue heads compete."""

    tenant: int
    seq: int              # arrival-event seq (FIFO tie-break)
    ready: float          # when the host-side preparation finished
    gpu_seconds: float
    weight: float = 1.0
    deadline: Optional[float] = None   # absolute virtual seconds
    label: str = ""
    on_outcome: Optional[Callable[[str], None]] = None
    resume_seq: Optional[int] = None   # pre-allocated completion-event seq
    # completion/expiry hooks, set by whoever submits the visit:
    # on_complete(event) fires inside the completion event (whose seq is
    # resume_seq); on_expire(now) fires at deadline expiry.
    on_complete: Optional[Callable[[Event], None]] = None
    on_expire: Optional[Callable[[float], None]] = None

    def _fire_complete(self, event: Event) -> None:
        # Scheduled directly as the completion callback — a bound method
        # instead of a fresh closure per dispatch.
        if self.on_complete is not None:
            self.on_complete(event)


class Wait:
    """``yield Wait(seconds)``: suspend the process for virtual time."""

    __slots__ = ("seconds",)

    def __init__(self, seconds: float) -> None:
        self.seconds = seconds


class Acquire:
    """``yield Acquire(resource, visit)``: submit and await the outcome.

    The process suspends until the visit completes (resumed with
    ``"served"`` inside the completion event, under the visit's
    pre-allocated seq) or its deadline expires (resumed with
    ``"timeout"``).
    """

    __slots__ = ("resource", "visit")

    def __init__(self, resource: "Resource", visit: Visit) -> None:
        self.resource = resource
        self.visit = visit


class _Block:
    """``yield BLOCK``: suspend with no scheduled resume."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "BLOCK"


BLOCK = _Block()


class Process:
    """A generator driven by the kernel.

    ``current_seq`` is the seq of the event the process is currently
    executing under — the rank a visit submitted *now* competes with.
    """

    __slots__ = ("_kernel", "_gen", "name", "current_seq", "alive",
                 "finished_at", "_resume_value")

    def __init__(self, kernel: EventClock,
                 gen: Generator[Union[Wait, Acquire, _Block], object, None],
                 name: str = "") -> None:
        self._kernel = kernel
        self._gen = gen
        self.name = name
        self.current_seq: Optional[int] = None
        self.alive = True
        self.finished_at: Optional[float] = None
        self._resume_value: object = None

    def start(self, at: float = 0, *, seq: Optional[int] = None) -> None:
        self._kernel.schedule(at, self._step, seq=seq)

    def resume_at(self, time: float, value: object = None, *,
                  seq: Optional[int] = None,
                  priority: int = PRIO_NORMAL) -> None:
        # A generator has at most one pending resume (a second send
        # before the first fired would already be a kernel bug), so the
        # value rides on the process instead of a per-resume closure.
        self._resume_value = value
        self._kernel.schedule(time, self._step_resume,
                              priority=priority, seq=seq)

    def resume_now(self, event: Event, value: object = None) -> None:
        """Continue inside the current event (same time, same seq)."""
        self._step(event, value)

    def _step_resume(self, event: Event) -> None:
        value = self._resume_value
        self._resume_value = None
        self._step(event, value)

    def _served(self, event: Event) -> None:
        self.resume_now(event, "served")

    def _expired(self, now: float) -> None:
        self.resume_at(now, "timeout")

    def _step(self, event: Event, value: object = None) -> None:
        self.current_seq = event.seq
        try:
            cmd = self._gen.send(value)
        except StopIteration:
            self.alive = False
            self.finished_at = self._kernel.now
            return
        if isinstance(cmd, Wait):
            self.resume_at(self._kernel.now + cmd.seconds)
        elif isinstance(cmd, Acquire):
            visit = cmd.visit
            visit.on_complete = self._served
            visit.on_expire = self._expired
            cmd.resource.submit(visit)
        elif cmd is BLOCK:
            pass  # whoever handed out BLOCK resumes us explicitly
        else:
            raise TypeError(f"process yielded {cmd!r}; "
                            "expected Wait, Acquire, or BLOCK")


class Resource:
    """An exclusive engine: per-lane FIFO queues, one owner at a time.

    The *scheduler* (any object with the
    :meth:`repro.serve.scheduler.Scheduler.select` contract) picks among
    the ready queue heads at each dispatch decision; ``None`` means
    kernel-native FIFO (min ``(ready, seq)``).  A context switch is
    charged whenever the engine changes owner — first occupancy is free,
    matching Fermi's save/restore between non-empty contexts.
    """

    def __init__(self, kernel: EventClock, ctx_switch_cost: float = 0.0,
                 scheduler=None,
                 on_serve: Optional[Callable[[Visit, float, bool], None]]
                 = None) -> None:
        self._kernel = kernel
        self.ctx_switch_cost = ctx_switch_cost
        self._scheduler = scheduler
        #: called as ``on_serve(visit, dispatch_at, switched)`` right
        #: before service starts — the lane layer's accounting hook.
        self._on_serve = on_serve
        self._queues: Dict[int, Deque[Visit]] = {}
        #: Fleet-scale fast paths, both behaviour-preserving: a heap of
        #: queue-*head* visits keyed ``(ready, seq)`` replaces the
        #: O(lanes) candidate scan under native FIFO (stale entries are
        #: lazily discarded), and the lazy-expiry sweep is skipped
        #: entirely while no queued visit carries a deadline.
        self._head_heap: List[Tuple[float, int, Visit]] = []
        self._deadlines = 0
        self.free_at: float = 0
        self.resident: Optional[int] = None
        self.switches = 0
        self.expiries = 0
        registry = obs_metrics.registry()
        self._switch_counter = registry.counter("engine.ctx_switches")
        self._expiry_counter = registry.counter("engine.deadline_expiries")

    def queue(self, lane: int) -> Deque[Visit]:
        return self._queues.setdefault(lane, deque())

    def _push_head(self, visit: Visit) -> None:
        heapq.heappush(self._head_heap, (visit.ready, visit.seq, visit))

    def submit(self, visit: Visit) -> None:
        """Enqueue at the current event; serve synchronously if free.

        Every visit pre-allocates its continuation seq here, at arrival
        rank — the oracle pushed a user's next event (allocating the
        next global seq) the moment its gpu event popped, not when the
        engine finished serving it.
        """
        if visit.resume_seq is None:
            visit.resume_seq = self._kernel.allocate_seq()
        queue = self.queue(visit.tenant)
        queue.append(visit)
        if visit.deadline is not None:
            self._deadlines += 1
        if self._scheduler is None and len(queue) == 1:
            self._push_head(visit)
        if self.free_at <= self._kernel.now:
            self._dispatch()

    # -- dispatch -------------------------------------------------------------

    def _select(self, candidates: List[Visit]) -> Visit:
        if self._scheduler is None:
            return min(candidates, key=lambda v: (v.ready, v.seq))
        visit = self._scheduler.select(candidates, self.resident,
                                       self._kernel.now)
        if visit not in candidates:  # defensive: scheduler contract
            raise ValueError(
                f"scheduler {self._scheduler!r} returned a "
                "non-candidate visit")
        return visit

    def _dispatch(self, event: Optional[Event] = None) -> None:
        now = self._kernel.now
        if self.free_at > now:
            return  # stale decision: the engine was re-dispatched already
        # Lazy expiry: queue heads whose deadline passed are abandoned,
        # never served, and their lane is notified now.  Same-time
        # resumes triggered by the expiry run before the engine is
        # re-arbitrated (PRIO_REDISPATCH), as the retired multiplexer
        # drained its heap before dispatching.  The sweep is skipped
        # while no queued visit carries a deadline (the common case for
        # fleet-scale lite lanes, where it would be O(lanes) per
        # dispatch).
        expired = False
        if self._deadlines:
            for queue in self._queues.values():
                popped = False
                while (queue and queue[0].deadline is not None
                       and now > queue[0].deadline):
                    visit = queue.popleft()
                    self._deadlines -= 1
                    popped = True
                    self.expiries += 1
                    self._expiry_counter.inc()
                    if visit.on_outcome is not None:
                        visit.on_outcome("timeout")
                    if visit.on_expire is not None:
                        visit.on_expire(now)
                    expired = True
                if popped and queue and self._scheduler is None:
                    self._push_head(queue[0])
        if expired:
            self._kernel.schedule(now, self._dispatch,
                                  priority=PRIO_REDISPATCH)
            return
        if self._scheduler is None:
            # Native FIFO: pop the min-(ready, seq) queue head straight
            # off the head heap.  Entries whose visit is no longer its
            # queue's head (served or expired since the push) are
            # stale; drop them on sight.
            heap = self._head_heap
            visit = None
            while heap:
                head = heap[0][2]
                queue = self._queues.get(head.tenant)
                if queue and queue[0] is head:
                    visit = head
                    break
                heapq.heappop(heap)
            if visit is None:
                return
            heapq.heappop(heap)
        else:
            candidates = [q[0] for q in self._queues.values() if q]
            if not candidates:
                return
            visit = self._select(candidates)
        queue = self._queues[visit.tenant]
        queue.popleft()
        if visit.deadline is not None:
            self._deadlines -= 1
        if self._scheduler is None and queue:
            self._push_head(queue[0])

        start = now
        switched = self.resident is not None and self.resident != visit.tenant
        if switched:
            self.switches += 1
            self._switch_counter.inc()
        tracer = _OBS.tracer
        if tracer is not None:
            tracer.event("engine.dispatch", "engine", now, 0.0,
                         tenant_index=visit.tenant, label=visit.label,
                         switched=switched, waited=now - visit.ready)
        if self._on_serve is not None:
            self._on_serve(visit, start, switched)
        if switched:
            start += self.ctx_switch_cost
        self.resident = visit.tenant
        finish = start + visit.gpu_seconds
        self.free_at = finish
        if visit.on_outcome is not None:
            visit.on_outcome("served")
        # Engine-free arbitration first, then the lane's continuation
        # under its arrival-rank seq.
        self._kernel.schedule(finish, self._dispatch, priority=PRIO_DISPATCH)
        self._kernel.schedule(finish, visit._fire_complete,
                              seq=visit.resume_seq)


# ---------------------------------------------------------------------------
# Lane layer: tenant unit streams over one shared engine.
# ---------------------------------------------------------------------------


@dataclass
class WorkUnit:
    """One schedulable unit of tenant work.

    ``host_seconds`` of sequential host work (overlappable across
    tenants), followed by an optional exclusive GPU-engine visit of
    ``gpu_seconds``.  ``gpu_seconds=None`` means no engine visit at all;
    ``0.0`` is a real (zero-duration) visit that still occupies the
    engine and can force a context switch — matching the analytic
    model's treatment of zero-duration gpu segments.

    ``deadline`` is relative to the moment the visit becomes ready: a
    visit still queued ``deadline`` seconds after its host part finished
    is abandoned (timeout) instead of served.  ``on_outcome`` is called
    with ``"served"`` or ``"timeout"`` when the engine decides.

    ``idle=True`` marks the unit as pure waiting (retry backoff): it
    advances the lane's timeline by ``host_seconds`` and is recorded as
    a ``backoff`` trace event, but does not count as host work and may
    not carry a GPU visit.
    """

    host_seconds: float
    gpu_seconds: Optional[float] = None
    label: str = ""
    deadline: Optional[float] = None
    on_outcome: Optional[Callable[[str], None]] = None
    idle: bool = False


@dataclass
class TenantLane:
    """One tenant's unit stream plus its service limits.

    ``max_inflight`` caps how many GPU visits may be queued or in
    service at once; host-side production stalls (backpressure) when
    the cap is reached.  ``max_inflight=1`` gives the strict
    host/gpu alternation of the analytic multi-user model.
    """

    units: Union[Iterable[WorkUnit], Iterator[WorkUnit]]
    weight: float = 1.0
    max_inflight: int = 1
    name: str = ""
    #: Called with the kernel time at which the unit stream ran dry —
    #: the fleet tier uses this to mark a machine session complete.
    on_exhausted: Optional[Callable[[float], None]] = None


@dataclass
class LaneTimeline:
    """Per-lane accounting over one kernel run."""

    finish_time: float = 0.0
    gpu_busy: float = 0.0
    host_busy: float = 0.0
    waits: float = 0.0


@dataclass
class LaneResult:
    """Outcome of :func:`run_lanes`."""

    makespan: float
    timelines: List[LaneTimeline]
    context_switches: int
    served: List[int]
    timed_out: List[int]
    stall_seconds: List[float]           # host blocked on the inflight cap
    events: List[Tuple[int, TraceEvent]] = field(default_factory=list)
    processes: List[Process] = field(default_factory=list)


class _LaneState:
    """Mutable runtime of one lane (shared between hooks and process)."""

    __slots__ = ("index", "spec", "timeline", "outstanding", "blocked",
                 "stall_since", "stall", "served", "timed_out", "host_free",
                 "process")

    def __init__(self, index: int, spec: TenantLane) -> None:
        self.index = index
        self.spec = spec
        self.timeline = LaneTimeline()
        self.outstanding = 0
        self.blocked = False
        self.stall_since = 0.0
        self.stall = 0.0
        self.served = 0
        self.timed_out = 0
        self.host_free = 0.0
        self.process: Optional[Process] = None


class LaneRun:
    """An in-flight lane run over one shared engine and kernel.

    :func:`run_lanes` is ``LaneRun(...)`` + ``kernel.run()`` +
    :meth:`finish` — splitting the three steps is what lets several
    independent engines (the fleet tier's machines) prepare their lanes
    on ONE shared :class:`EventClock` and drain together, so their
    virtual timelines interleave instead of running back to back.

    Construction schedules every lane's t=0 wakeup but pops nothing;
    the caller drains the kernel (once, however many LaneRuns share it)
    and then reads each run's :meth:`finish`.  :meth:`add_lane` admits
    a new lane mid-run at the kernel's current time — the fleet tier's
    migration landing point.
    """

    def __init__(self, lanes: Sequence[TenantLane], scheduler,
                 ctx_switch_cost: float, kernel: EventClock) -> None:
        self.kernel = kernel
        self.ctx_switch_cost = ctx_switch_cost
        self._states: List[_LaneState] = []
        self._lane_events: List[Tuple[int, TraceEvent]] = []
        self._lane_names: List[str] = []
        self.engine = Resource(kernel, ctx_switch_cost, scheduler,
                               on_serve=self._on_serve)
        for lane in lanes:
            self._admit(lane)
        for state in self._states:  # t=0 wakeups in lane order
            state.process.start(0.0)

    # -- lane admission -----------------------------------------------------

    def _admit(self, spec: TenantLane) -> _LaneState:
        index = len(self._states)
        state = _LaneState(index, spec)
        self._states.append(state)
        self._lane_names.append(spec.name or f"lane{index}")
        state.process = Process(self.kernel, self._lane_process(state),
                                name=self._lane_names[index])
        return state

    def add_lane(self, spec: TenantLane) -> int:
        """Admit *spec* mid-run, starting at the kernel's current time.

        Returns the new lane's index.  The lane's first wakeup is a
        fresh kernel event at ``kernel.now``, so a lane added from
        inside a running event begins producing after that event —
        exactly where a migrated-in session resumes.
        """
        state = self._admit(spec)
        state.process.start(self.kernel.now)
        return state.index

    # -- accounting hooks ---------------------------------------------------

    def _record(self, tenant: int, start: float, seconds: float,
                category: str) -> None:
        if seconds > 0.0:
            self._lane_events.append(
                (tenant, TraceEvent(start, seconds, category)))
            self.kernel.charge(start, seconds, category)
            tracer = _OBS.tracer
            if tracer is not None:
                # Tenant-attributed schedule events: these are what the
                # Chrome exporter turns into per-tenant lane tracks.
                tracer.event(category, category, start, seconds,
                             tenant=self._lane_names[tenant], lane=True)

    def _on_serve(self, visit: Visit, dispatch_at: float,
                  switched: bool) -> None:
        state = self._states[visit.tenant]
        state.timeline.waits += dispatch_at - visit.ready
        start = dispatch_at
        if switched:
            self._record(visit.tenant, start, self.ctx_switch_cost,
                         "ctx_switch")
            start += self.ctx_switch_cost
        finish = start + visit.gpu_seconds
        state.timeline.gpu_busy += visit.gpu_seconds
        state.timeline.finish_time = max(state.timeline.finish_time, finish)
        self._record(visit.tenant, start, visit.gpu_seconds, "gpu")
        state.served += 1

    def _release_slot(self, state: _LaneState, now: float, outcome: str,
                      event: Optional[Event] = None) -> None:
        # The stall interval is handed to the resumed produce and only
        # charged once it actually yields another unit: trailing blocks
        # after an exhausted stream delayed nothing.
        state.outstanding -= 1
        if state.blocked:
            state.blocked = False
            stall = max(now - state.stall_since, 0.0)
            if event is not None:
                # Resume inside the completion event: same time, and the
                # visit's pre-allocated seq keeps oracle arrival rank.
                state.process.resume_now(event, (outcome, stall))
            else:
                state.process.resume_at(max(state.host_free, now),
                                        (outcome, stall))

    def _on_complete(self, event: Event, state: _LaneState) -> None:
        self._release_slot(state, event.time, "served", event)

    def _on_expire(self, now: float, state: _LaneState) -> None:
        state.timed_out += 1
        self._release_slot(state, now, "timeout")

    # -- lane production ----------------------------------------------------

    def _lane_process(self, state: _LaneState
                      ) -> Generator[Union[Wait, Acquire, _Block],
                                     object, None]:
        kernel = self.kernel
        spec = state.spec
        units = iter(spec.units)
        pending_stall: Optional[float] = None
        while True:
            try:
                unit = next(units)
            except StopIteration:
                break
            if pending_stall is not None:
                state.stall += pending_stall
                pending_stall = None
            now = kernel.now
            done = now + unit.host_seconds
            if unit.idle:
                # Backoff sleep: occupies the lane's timeline without
                # counting as host work (the tenant is waiting, not
                # producing) and never carries an engine visit.
                state.timeline.finish_time = max(
                    state.timeline.finish_time, done)
                state.host_free = done
                self._record(state.index, now, unit.host_seconds, "backoff")
                yield Wait(unit.host_seconds)
                continue
            state.timeline.host_busy += unit.host_seconds
            state.timeline.finish_time = max(state.timeline.finish_time, done)
            state.host_free = done
            self._record(state.index, now, unit.host_seconds, "host")
            if unit.gpu_seconds is None:
                yield Wait(unit.host_seconds)
                continue
            if unit.host_seconds > 0.0:
                # Arrive at the engine when the host part finishes; the
                # arrival event's seq is the visit's FIFO rank.
                yield Wait(unit.host_seconds)
            visit = Visit(
                tenant=state.index, seq=state.process.current_seq,
                ready=done, gpu_seconds=unit.gpu_seconds, weight=spec.weight,
                deadline=(None if unit.deadline is None
                          else done + unit.deadline),
                label=unit.label, on_outcome=unit.on_outcome)
            visit.on_complete = lambda ev, s=state: self._on_complete(ev, s)
            visit.on_expire = lambda at, s=state: self._on_expire(at, s)
            state.outstanding += 1
            self.engine.submit(visit)
            if state.outstanding < spec.max_inflight:
                yield Wait(0.0)
            else:
                state.blocked = True
                state.stall_since = done
                resumed = yield BLOCK
                pending_stall = resumed[1]
        state.timeline.finish_time = max(state.timeline.finish_time,
                                         kernel.now)
        if spec.on_exhausted is not None:
            spec.on_exhausted(kernel.now)

    # -- results ------------------------------------------------------------

    def finish(self) -> LaneResult:
        """Assemble the result after the shared kernel has drained."""
        states = self._states
        makespan = max((s.timeline.finish_time for s in states), default=0.0)
        return LaneResult(
            makespan=makespan,
            timelines=[s.timeline for s in states],
            context_switches=self.engine.switches,
            served=[s.served for s in states],
            timed_out=[s.timed_out for s in states],
            stall_seconds=[s.stall for s in states],
            events=self._lane_events,
            processes=[s.process for s in states])


def run_lanes(lanes: Sequence[TenantLane], scheduler,
              ctx_switch_cost: float,
              kernel: Optional[EventClock] = None) -> LaneResult:
    """Run every lane to exhaustion over one shared engine.

    This is the kernel-native core both public multiplexers wrap: each
    lane becomes a real :class:`Process` pulling its unit stream in
    virtual time (so a serving engine's streams execute sealed requests
    at production time), all GPU visits arbitrate through one
    :class:`Resource` under *scheduler*, and the accounting —
    timelines, waits, stalls, context switches, per-lane trace events —
    preserves the retired implementations' semantics.
    """
    kernel = kernel if kernel is not None else EventClock()
    run = LaneRun(lanes, scheduler, ctx_switch_cost, kernel)
    kernel.run()
    return run.finish()
