"""Simulation kernel: virtual time, cost model, and pipeline math.

The HIX reproduction is a *functional* simulator — real bytes move through
the simulated PCIe fabric and real kernels execute on real (numpy) data —
but performance is reported in *simulated seconds* charged on a
:class:`~repro.sim.clock.SimClock` by a calibrated
:class:`~repro.sim.costs.CostModel`.  This mirrors the paper's prototype,
which emulated the new hardware in KVM/QEMU and measured the resulting
software stack.

Concurrency — multi-user contention, multi-tenant serving, pipelined
copies — executes on the discrete-event kernel in
:mod:`repro.sim.engine` (:class:`~repro.sim.engine.EventClock`,
:class:`~repro.sim.engine.Process`, :class:`~repro.sim.engine.Resource`),
whose primitives are re-exported here.
"""

from repro.sim.clock import SimClock, TimeBreakdown
from repro.sim.costs import CostModel
from repro.sim.engine import (
    EventClock,
    LaneResult,
    Process,
    Resource,
    TenantLane,
    Visit,
    WorkUnit,
    run_lanes,
)
from repro.sim.pipeline import (
    pipelined_time,
    pipelined_time_events,
    pipelined_times,
    serial_time,
)
from repro.sim.trace import TraceRecorder, record

__all__ = [
    "SimClock",
    "TimeBreakdown",
    "CostModel",
    "EventClock",
    "LaneResult",
    "Process",
    "Resource",
    "TenantLane",
    "Visit",
    "WorkUnit",
    "run_lanes",
    "pipelined_time",
    "pipelined_time_events",
    "pipelined_times",
    "serial_time",
    "TraceRecorder",
    "record",
]
