"""Execution tracing: timelines of simulated-time charges.

A :class:`TraceRecorder` subscribes to a machine's clock and records
every charge as a (start, duration, category) event.  This is the
simulator's profiler: examples and debugging sessions can render a
per-phase timeline of a run, and tests can assert ordering properties
("the in-GPU decrypt kernel runs after the DMA", etc.).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.sim.clock import SimClock


@dataclass(frozen=True)
class TraceEvent:
    """One simulated-time charge."""

    start: float
    duration: float
    category: str

    @property
    def end(self) -> float:
        return self.start + self.duration


class TraceRecorder:
    """Collects clock charges; usable as a context manager."""

    def __init__(self, clock: SimClock) -> None:
        self._clock = clock
        self.events: List[TraceEvent] = []
        self._attached = False

    def __enter__(self) -> "TraceRecorder":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def start(self) -> None:
        if not self._attached:
            self._clock.add_listener(self._record)
            self._attached = True

    def stop(self) -> None:
        if self._attached:
            self._clock.remove_listener(self._record)
            self._attached = False

    def _record(self, start: float, seconds: float, category: str) -> None:
        if seconds > 0.0:
            self.events.append(TraceEvent(start, seconds, category))

    # -- queries ----------------------------------------------------------------

    def by_category(self, category: str) -> List[TraceEvent]:
        return [e for e in self.events if e.category == category]

    def first(self, category: str) -> Optional[TraceEvent]:
        for event in self.events:
            if event.category == category:
                return event
        return None

    def total(self, category: Optional[str] = None) -> float:
        return sum(e.duration for e in self.events
                   if category is None or e.category == category)

    def render(self, width: int = 60) -> str:
        """ASCII timeline, one row per category."""
        if not self.events:
            return "(empty trace)"
        span, column = _time_axis(self.events, width)
        categories = sorted({e.category for e in self.events})
        lines = [f"trace: {span * 1e3:.3f} ms across "
                 f"{len(self.events)} events"]
        for category in categories:
            row = [" "] * width
            for event in self.by_category(category):
                lo = column(event.start)
                hi = column(event.end)
                for index in range(lo, max(hi, lo) + 1):
                    row[index] = "#"
            lines.append(f"{category:>16} |{''.join(row)}|")
        return "\n".join(lines)


def record(clock: SimClock) -> TraceRecorder:
    """Convenience: ``with trace.record(machine.clock) as t: ...``."""
    return TraceRecorder(clock)


def _time_axis(events: "List[TraceEvent]", width: int):
    """Shared axis scaling for the ASCII renderers.

    Returns ``(span_seconds, column)`` where ``column(t)`` maps a
    timestamp to a cell in ``[0, width - 1]``.  A trace whose events all
    occupy one instant (a single zero-duration event, or several at the
    same time) has a genuine zero span: everything maps to column 0 and
    the caller's header reports ``0.000 ms`` instead of the epsilon-
    inflated span the renderers used to fake.
    """
    t0 = min(e.start for e in events)
    t1 = max(e.end for e in events)
    span = t1 - t0
    if span <= 0.0:
        return 0.0, lambda t: 0
    scale = (width - 1) / span
    return span, lambda t: int((t - t0) * scale)


#: Glyphs for :func:`render_lanes`; unknown categories render as ``*``.
LANE_GLYPHS = {
    "host": ".",
    "gpu": "#",
    "ctx_switch": "x",
}


def render_lanes(lanes: "dict[str, List[TraceEvent]]",
                 width: int = 60) -> str:
    """ASCII timeline with one row per named lane (e.g. per tenant).

    Unlike :meth:`TraceRecorder.render` (one row per *category*), every
    lane mixes categories on one row — host work as ``.``, exclusive
    GPU-engine time as ``#``, context switches as ``x`` — so concurrent
    tenants' interleaving on the shared engine is visible at a glance.
    Later-drawn glyphs win inside a cell, with engine time drawn last so
    the serialized resource always shows through.
    """
    all_events = [e for events in lanes.values() for e in events]
    if not all_events:
        return "(empty lanes)"
    span, column = _time_axis(all_events, width)
    label_width = max(len(name) for name in lanes)
    lines = [f"lanes: {span * 1e3:.3f} ms "
             f"(host '.', gpu '#', ctx switch 'x')"]
    draw_order = {"host": 0, "ctx_switch": 1, "gpu": 2}
    for name, events in lanes.items():
        row = [" "] * width
        for event in sorted(events,
                            key=lambda e: draw_order.get(e.category, 0)):
            glyph = LANE_GLYPHS.get(event.category, "*")
            lo = column(event.start)
            hi = column(event.end)
            for index in range(lo, max(hi, lo) + 1):
                row[index] = glyph
        lines.append(f"{name:>{label_width}} |{''.join(row)}|")
    return "\n".join(lines)


#: The machine data-plane counters, as (name, getter) pairs — the one
#: source both the legacy :func:`fastpath_counters` accessor and the
#: registry gauges (``fastpath.*``) are built from.
FASTPATH_GAUGES = (
    ("tlb_hits", lambda m: m.mmu.tlb.hits),
    ("tlb_misses", lambda m: m.mmu.tlb.misses),
    ("mmu_range_pages", lambda m: m.mmu.range_pages),
    ("mmu_coalesced_runs", lambda m: m.mmu.coalesced_runs),
    ("iommu_coalesced_runs", lambda m: m.iommu.coalesced_runs),
    ("dma_bytes_read", lambda m: m.dma.bytes_read),
    ("dma_bytes_written", lambda m: m.dma.bytes_written),
    ("phys_zero_copy_bytes", lambda m: m.phys_mem.zero_copy_bytes),
    ("phys_pages_dropped", lambda m: m.phys_mem.pages_dropped),
)

#: Event-kernel counters surfaced alongside the machine fast path: the
#: registry counter name and the key it gets in the legacy dict.
ENGINE_COUNTERS = (
    ("engine.events_processed", "engine_events_processed"),
    ("engine.ctx_switches", "engine_ctx_switches"),
    ("engine.deadline_expiries", "engine_deadline_expiries"),
)


def register_fastpath_gauges(machine, registry=None) -> None:
    """Publish *machine*'s data-plane counters as ``fastpath.*`` gauges.

    Called by :class:`repro.system.Machine` on construction.  Names are
    fixed, so the registry always describes the most recently built
    machine — the sensible default for a process profiling one testbed.
    """
    from repro.obs import metrics as obs_metrics
    registry = registry if registry is not None else obs_metrics.registry()
    for name, getter in FASTPATH_GAUGES:
        registry.gauge_fn(f"fastpath.{name}",
                          (lambda m=machine, g=getter: g(m)))


def fastpath_counters(machine) -> "dict[str, int]":
    """Wall-clock fast-path statistics of a machine's data plane.

    These counters track how the *simulator* moved bytes (TLB service,
    run coalescing, zero-copy page drops, DMA volumes) — they have no
    effect on simulated time, and are surfaced so runs can confirm the
    fast path actually engaged (e.g. a TLB hit rate near 1.0 and a
    nonzero coalesce count on any steady-state workload).

    This is now a thin adapter over two registry-backed sources: the
    per-machine ``fastpath.*`` gauges (read directly off *machine* via
    the shared :data:`FASTPATH_GAUGES` spec) and the event kernel's
    process-wide counters (events processed, context switches charged,
    deadline expiries) from :func:`repro.obs.metrics.registry` — the
    kernel counters cover every :class:`~repro.sim.engine.EventClock`
    run in this process, since kernels are created per run, not per
    machine.
    """
    from repro.obs import metrics as obs_metrics
    counters = {name: getter(machine) for name, getter in FASTPATH_GAUGES}
    registry = obs_metrics.registry()
    for metric_name, key in ENGINE_COUNTERS:
        metric = registry.get(metric_name)
        counters[key] = int(metric.value) if metric is not None else 0
    return counters
