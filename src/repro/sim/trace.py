"""Execution tracing: timelines of simulated-time charges.

A :class:`TraceRecorder` subscribes to a machine's clock and records
every charge as a (start, duration, category) event.  This is the
simulator's profiler: examples and debugging sessions can render a
per-phase timeline of a run, and tests can assert ordering properties
("the in-GPU decrypt kernel runs after the DMA", etc.).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.sim.clock import SimClock


@dataclass(frozen=True)
class TraceEvent:
    """One simulated-time charge."""

    start: float
    duration: float
    category: str

    @property
    def end(self) -> float:
        return self.start + self.duration


class TraceRecorder:
    """Collects clock charges; usable as a context manager."""

    def __init__(self, clock: SimClock) -> None:
        self._clock = clock
        self.events: List[TraceEvent] = []
        self._attached = False

    def __enter__(self) -> "TraceRecorder":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def start(self) -> None:
        if not self._attached:
            self._clock.add_listener(self._record)
            self._attached = True

    def stop(self) -> None:
        if self._attached:
            self._clock.remove_listener(self._record)
            self._attached = False

    def _record(self, start: float, seconds: float, category: str) -> None:
        if seconds > 0.0:
            self.events.append(TraceEvent(start, seconds, category))

    # -- queries ----------------------------------------------------------------

    def by_category(self, category: str) -> List[TraceEvent]:
        return [e for e in self.events if e.category == category]

    def first(self, category: str) -> Optional[TraceEvent]:
        for event in self.events:
            if event.category == category:
                return event
        return None

    def total(self, category: Optional[str] = None) -> float:
        return sum(e.duration for e in self.events
                   if category is None or e.category == category)

    def render(self, width: int = 60) -> str:
        """ASCII timeline, one row per category."""
        if not self.events:
            return "(empty trace)"
        t0 = min(e.start for e in self.events)
        t1 = max(e.end for e in self.events)
        span = max(t1 - t0, 1e-12)
        categories = sorted({e.category for e in self.events})
        lines = [f"trace: {span * 1e3:.3f} ms across "
                 f"{len(self.events)} events"]
        for category in categories:
            row = [" "] * width
            for event in self.by_category(category):
                lo = int((event.start - t0) / span * (width - 1))
                hi = int((event.end - t0) / span * (width - 1))
                for index in range(lo, max(hi, lo) + 1):
                    row[index] = "#"
            lines.append(f"{category:>16} |{''.join(row)}|")
        return "\n".join(lines)


def record(clock: SimClock) -> TraceRecorder:
    """Convenience: ``with trace.record(machine.clock) as t: ...``."""
    return TraceRecorder(clock)


#: Glyphs for :func:`render_lanes`; unknown categories render as ``*``.
LANE_GLYPHS = {
    "host": ".",
    "gpu": "#",
    "ctx_switch": "x",
}


def render_lanes(lanes: "dict[str, List[TraceEvent]]",
                 width: int = 60) -> str:
    """ASCII timeline with one row per named lane (e.g. per tenant).

    Unlike :meth:`TraceRecorder.render` (one row per *category*), every
    lane mixes categories on one row — host work as ``.``, exclusive
    GPU-engine time as ``#``, context switches as ``x`` — so concurrent
    tenants' interleaving on the shared engine is visible at a glance.
    Later-drawn glyphs win inside a cell, with engine time drawn last so
    the serialized resource always shows through.
    """
    all_events = [e for events in lanes.values() for e in events]
    if not all_events:
        return "(empty lanes)"
    t0 = min(e.start for e in all_events)
    t1 = max(e.end for e in all_events)
    span = max(t1 - t0, 1e-12)
    label_width = max(len(name) for name in lanes)
    lines = [f"lanes: {span * 1e3:.3f} ms "
             f"(host '.', gpu '#', ctx switch 'x')"]
    draw_order = {"host": 0, "ctx_switch": 1, "gpu": 2}
    for name, events in lanes.items():
        row = [" "] * width
        for event in sorted(events,
                            key=lambda e: draw_order.get(e.category, 0)):
            glyph = LANE_GLYPHS.get(event.category, "*")
            lo = int((event.start - t0) / span * (width - 1))
            hi = int((event.end - t0) / span * (width - 1))
            for index in range(lo, max(hi, lo) + 1):
                row[index] = glyph
        lines.append(f"{name:>{label_width}} |{''.join(row)}|")
    return "\n".join(lines)


def fastpath_counters(machine) -> "dict[str, int]":
    """Wall-clock fast-path statistics of a machine's data plane.

    These counters track how the *simulator* moved bytes (TLB service,
    run coalescing, zero-copy page drops, DMA volumes) — they have no
    effect on simulated time, and are surfaced so runs can confirm the
    fast path actually engaged (e.g. a TLB hit rate near 1.0 and a
    nonzero coalesce count on any steady-state workload).
    """
    mmu = machine.mmu
    return {
        "tlb_hits": mmu.tlb.hits,
        "tlb_misses": mmu.tlb.misses,
        "mmu_range_pages": mmu.range_pages,
        "mmu_coalesced_runs": mmu.coalesced_runs,
        "iommu_coalesced_runs": machine.iommu.coalesced_runs,
        "dma_bytes_read": machine.dma.bytes_read,
        "dma_bytes_written": machine.dma.bytes_written,
        "phys_zero_copy_bytes": machine.phys_mem.zero_copy_bytes,
        "phys_pages_dropped": machine.phys_mem.pages_dropped,
    }
