"""Gaussian Elimination (GS): 2048x2048 dense system.

Rodinia's two-kernel structure: ``gs_fan1`` computes the column of
multipliers for pivot *t*, ``gs_fan2`` applies the rank-1 update to the
trailing matrix and RHS.  One pair of launches per pivot column makes GS
the launch-heaviest app in the suite — and its high compute-to-
communication ratio is why the paper reports HIX "comparable" here.
Table 5: 32 MB both directions (matrix + multipliers, float32).
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import MB, Workload
from repro.workloads.calibration import RODINIA_COMPUTE_SECONDS
from repro.workloads.rodinia._common import read_f32, registry, write_arr

N = 2048


@registry.kernel("rodinia.gs_fan1")
def _gs_fan1(dev, ctx, params) -> None:
    """m[i,t] = a[i,t] / a[t,t] for i > t: (m, a, n, t)."""
    m_ptr, a_ptr, n, t = params
    a = read_f32(dev, ctx, a_ptr, n * n).reshape(n, n)
    m = read_f32(dev, ctx, m_ptr, n * n).reshape(n, n)
    m[t + 1:, t] = a[t + 1:, t] / a[t, t]
    write_arr(dev, ctx, m_ptr, m)


@registry.kernel("rodinia.gs_fan2")
def _gs_fan2(dev, ctx, params) -> None:
    """Trailing update a -= m[:,t] outer a[t,:], b likewise: (m, a, b, n, t)."""
    m_ptr, a_ptr, b_ptr, n, t = params
    a = read_f32(dev, ctx, a_ptr, n * n).reshape(n, n)
    m = read_f32(dev, ctx, m_ptr, n * n).reshape(n, n)
    b = read_f32(dev, ctx, b_ptr, n)
    multipliers = m[t + 1:, t:t + 1]
    a[t + 1:, :] -= multipliers * a[t:t + 1, :]
    b[t + 1:] -= multipliers[:, 0] * b[t]
    write_arr(dev, ctx, a_ptr, a)
    write_arr(dev, ctx, b_ptr, b)


class Gaussian(Workload):
    app_code = "GS"
    name = "gaussian"
    problem_desc = "2048x2048 points"
    modeled_h2d = int(32.00 * MB)
    modeled_d2h = int(32.00 * MB)
    n_launches = 2 * (N - 1)
    compute_seconds = RODINIA_COMPUTE_SECONDS["GS"]

    def run(self, api, inflation: float = 1.0) -> None:
        n = self.scaled_dim(N, inflation)
        rng = np.random.default_rng(seed=23)
        a0 = rng.random((n, n), dtype=np.float32) + np.float32(n) * np.eye(
            n, dtype=np.float32)   # diagonally dominant: stable w/o pivoting
        b0 = rng.random(n, dtype=np.float32)

        nbytes = n * n * 4
        d_a = api.cuMemAlloc(nbytes)
        d_m = api.cuMemAlloc(nbytes)
        d_b = api.cuMemAlloc(n * 4)
        api.cuMemcpyHtoD(d_a, a0)
        api.cuMemcpyHtoD(d_m, np.zeros((n, n), dtype=np.float32))
        api.cuMemcpyHtoD(d_b, b0)
        module = api.cuModuleLoad(["rodinia.gs_fan1", "rodinia.gs_fan2",
                                   "builtin.memset32"])
        per_launch = self.per_launch_seconds()
        for t in range(n - 1):
            api.cuLaunchKernel(module, "rodinia.gs_fan1", [d_m, d_a, n, t],
                               compute_seconds=per_launch)
            api.cuLaunchKernel(module, "rodinia.gs_fan2",
                               [d_m, d_a, d_b, n, t],
                               compute_seconds=per_launch)

        upper = np.frombuffer(api.cuMemcpyDtoH(d_a, nbytes),
                              dtype=np.float32).reshape(n, n)
        api.cuMemcpyDtoH(d_m, nbytes)   # multipliers come back too (Table 5)
        b_final = np.frombuffer(api.cuMemcpyDtoH(d_b, n * 4),
                                dtype=np.float32)

        # Back-substitution on the host, then verify against the original
        # system (the end-to-end check Rodinia performs offline).
        x = np.zeros(n, dtype=np.float64)
        u = upper.astype(np.float64)
        rhs = b_final.astype(np.float64)
        for i in range(n - 1, -1, -1):
            x[i] = (rhs[i] - u[i, i + 1:] @ x[i + 1:]) / u[i, i]
        residual = a0.astype(np.float64) @ x - b0.astype(np.float64)
        self.check(float(np.max(np.abs(residual))) < 1e-2,
                   f"solution residual too large "
                   f"({float(np.max(np.abs(residual))):g})")
        for ptr in (d_a, d_m, d_b):
            api.cuMemFree(ptr)
