"""SRAD: speckle-reducing anisotropic diffusion on a 3096x2048 image.

Rodinia's two kernels per iteration: ``rodinia.srad_coeff`` computes the
per-pixel diffusion coefficient from local gradients and the global
speckle statistics; ``rodinia.srad_update`` applies the divergence
update.  Table 5: 24.23 MB HtoD, 24.19 MB DtoH (float32 image each way).
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import MB, Workload
from repro.workloads.calibration import RODINIA_COMPUTE_SECONDS
from repro.workloads.rodinia._common import read_f32, registry, write_arr

ROWS = 3096
COLS = 2048
ITERATIONS = 2
LAMBDA = 0.5


def _gradients(img: np.ndarray):
    """One-sided neighbour differences with clamped borders (as Rodinia)."""
    north = np.vstack((img[:1], img[:-1])) - img
    south = np.vstack((img[1:], img[-1:])) - img
    west = np.hstack((img[:, :1], img[:, :-1])) - img
    east = np.hstack((img[:, 1:], img[:, -1:])) - img
    return north, south, west, east


def _coeff(img: np.ndarray) -> np.ndarray:
    north, south, west, east = _gradients(img)
    grad_sq = (north ** 2 + south ** 2 + west ** 2 + east ** 2) / (img ** 2)
    laplacian = (north + south + west + east) / img
    mean = float(img.mean())
    variance = float(img.var())
    q0_sq = variance / (mean * mean)
    num = 0.5 * grad_sq - (1.0 / 16.0) * laplacian ** 2
    den = (1.0 + 0.25 * laplacian) ** 2
    q_sq = num / den
    c = 1.0 / (1.0 + (q_sq - q0_sq) / (q0_sq * (1.0 + q0_sq)))
    return np.clip(c, 0.0, 1.0).astype(np.float32)


def _update(img: np.ndarray, c: np.ndarray) -> np.ndarray:
    north, south, west, east = _gradients(img)
    c_south = np.vstack((c[1:], c[-1:]))
    c_east = np.hstack((c[:, 1:], c[:, -1:]))
    divergence = c_south * south + c * north + c_east * east + c * west
    return (img + (LAMBDA / 4.0) * divergence).astype(np.float32)


@registry.kernel("rodinia.srad_coeff")
def _srad_coeff(dev, ctx, params) -> None:
    """(img, coeff, rows, cols)."""
    img_ptr, c_ptr, rows, cols = params
    img = read_f32(dev, ctx, img_ptr, rows * cols).reshape(rows, cols)
    write_arr(dev, ctx, c_ptr, _coeff(img.astype(np.float64)))


@registry.kernel("rodinia.srad_update")
def _srad_update(dev, ctx, params) -> None:
    """(img, coeff, rows, cols)."""
    img_ptr, c_ptr, rows, cols = params
    img = read_f32(dev, ctx, img_ptr, rows * cols).reshape(rows, cols)
    c = read_f32(dev, ctx, c_ptr, rows * cols).reshape(rows, cols)
    write_arr(dev, ctx, img_ptr,
              _update(img.astype(np.float64), c.astype(np.float64)))


class Srad(Workload):
    app_code = "SRAD"
    name = "srad"
    problem_desc = "3096x2048 points"
    modeled_h2d = int(24.23 * MB)
    modeled_d2h = int(24.19 * MB)
    n_launches = 2 * ITERATIONS
    compute_seconds = RODINIA_COMPUTE_SECONDS["SRAD"]

    def run(self, api, inflation: float = 1.0) -> None:
        scale = max(int(np.sqrt(inflation)), 1)
        rows = max(ROWS // scale, 8)
        cols = max(COLS // scale, 8)
        rng = np.random.default_rng(seed=47)
        image = (rng.random((rows, cols), dtype=np.float32) + 0.5)

        nbytes = rows * cols * 4
        d_img = api.cuMemAlloc(nbytes)
        d_c = api.cuMemAlloc(nbytes)
        api.cuMemcpyHtoD(d_img, image)
        module = api.cuModuleLoad(["rodinia.srad_coeff",
                                   "rodinia.srad_update",
                                   "builtin.memset32"])
        per_launch = self.per_launch_seconds()
        for _ in range(ITERATIONS):
            api.cuLaunchKernel(module, "rodinia.srad_coeff",
                               [d_img, d_c, rows, cols],
                               compute_seconds=per_launch)
            api.cuLaunchKernel(module, "rodinia.srad_update",
                               [d_img, d_c, rows, cols],
                               compute_seconds=per_launch)
        result = np.frombuffer(api.cuMemcpyDtoH(d_img, nbytes),
                               dtype=np.float32).reshape(rows, cols)

        # Mirror the device's float32 storage between iterations so the
        # reference sees the same rounding the kernels do.
        expected = image.copy()
        for _ in range(ITERATIONS):
            c = _coeff(expected.astype(np.float64))
            expected = _update(expected.astype(np.float64),
                               c.astype(np.float64))
        self.check_close(result, expected, "diffused image", rtol=1e-3)
        api.cuMemFree(d_img)
        api.cuMemFree(d_c)
