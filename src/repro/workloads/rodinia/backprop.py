"""Back Propagation (BP): 589,824-node input layer, 16 hidden units.

Two kernels, as in Rodinia: ``bp_layerforward`` (input->hidden forward
pass with sigmoid activation) and ``bp_adjust_weights`` (gradient
update of the input-hidden weight matrix).  Table 5: 117.0 MB HtoD
(input units + weights + previous weights + scratch), 42.75 MB DtoH
(updated weights + deltas).
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import MB, Workload
from repro.workloads.calibration import RODINIA_COMPUTE_SECONDS
from repro.workloads.rodinia._common import (
    read_f32,
    registry,
    sigmoid,
    write_arr,
)

N_IN = 589_824
N_HID = 16
LEARNING_RATE = 0.3
MOMENTUM = 0.3


@registry.kernel("rodinia.bp_layerforward")
def _bp_layerforward(dev, ctx, params) -> None:
    """hidden = sigmoid(bias + x @ W): (x, w, hid, n_in, n_hid)."""
    x_ptr, w_ptr, hid_ptr, n_in, n_hid = params
    x = read_f32(dev, ctx, x_ptr, n_in)
    w = read_f32(dev, ctx, w_ptr, (n_in + 1) * n_hid).reshape(n_in + 1, n_hid)
    hid = sigmoid(w[0] + x @ w[1:])
    write_arr(dev, ctx, hid_ptr, hid.astype(np.float32))


@registry.kernel("rodinia.bp_adjust_weights")
def _bp_adjust_weights(dev, ctx, params) -> None:
    """W += lr * outer([1; x], delta): (x, w, delta, n_in, n_hid, lr)."""
    x_ptr, w_ptr, delta_ptr, n_in, n_hid, lr = params
    x = read_f32(dev, ctx, x_ptr, n_in)
    w = read_f32(dev, ctx, w_ptr, (n_in + 1) * n_hid).reshape(n_in + 1, n_hid)
    delta = read_f32(dev, ctx, delta_ptr, n_hid)
    augmented = np.concatenate(([np.float32(1.0)], x))
    w += np.float32(lr) * np.outer(augmented, delta).astype(np.float32)
    write_arr(dev, ctx, w_ptr, w)


class BackProp(Workload):
    app_code = "BP"
    name = "backprop"
    problem_desc = "589,824 nodes"
    modeled_h2d = int(117.0 * MB)
    modeled_d2h = int(42.75 * MB)
    n_launches = 2
    compute_seconds = RODINIA_COMPUTE_SECONDS["BP"]

    def run(self, api, inflation: float = 1.0) -> None:
        n_in = self.scaled_elems(N_IN, inflation)
        rng = np.random.default_rng(seed=7)
        x = rng.random(n_in, dtype=np.float32)
        w = (rng.random(((n_in + 1), N_HID), dtype=np.float32) - 0.5) * 0.02
        target = rng.random(N_HID, dtype=np.float32)

        x_bytes, w_bytes = x.nbytes, w.nbytes
        d_x = api.cuMemAlloc(x_bytes)
        d_w = api.cuMemAlloc(w_bytes)
        d_wprev = api.cuMemAlloc(w_bytes)   # momentum copy (round-tripped)
        d_hid = api.cuMemAlloc(N_HID * 4)
        d_delta = api.cuMemAlloc(N_HID * 4)
        api.cuMemcpyHtoD(d_x, x)
        api.cuMemcpyHtoD(d_w, w)
        api.cuMemcpyHtoD(d_wprev, w)
        module = api.cuModuleLoad(["rodinia.bp_layerforward",
                                   "rodinia.bp_adjust_weights",
                                   "builtin.memset32"])
        per_launch = self.per_launch_seconds()
        api.cuLaunchKernel(module, "rodinia.bp_layerforward",
                           [d_x, d_w, d_hid, n_in, N_HID],
                           compute_seconds=per_launch)
        hid = np.frombuffer(api.cuMemcpyDtoH(d_hid, N_HID * 4),
                            dtype=np.float32)
        expected_hid = sigmoid(w[0] + x @ w[1:])
        self.check_close(hid, expected_hid, "hidden activations", rtol=1e-3)

        delta = (hid * (1.0 - hid) * (target - hid)).astype(np.float32)
        api.cuMemcpyHtoD(d_delta, delta)
        api.cuLaunchKernel(module, "rodinia.bp_adjust_weights",
                           [d_x, d_w, d_delta, n_in, N_HID,
                            float(LEARNING_RATE)],
                           compute_seconds=per_launch)
        w_new = np.frombuffer(api.cuMemcpyDtoH(d_w, w_bytes),
                              dtype=np.float32).reshape(n_in + 1, N_HID)
        expected_w = w + LEARNING_RATE * np.outer(
            np.concatenate(([1.0], x)).astype(np.float32), delta
        ).astype(np.float32)
        self.check_close(w_new, expected_w, "updated weights", rtol=1e-3)

        # Pad transfers up to Table 5's totals (masks/scratch in Rodinia).
        semantic_h2d = (x_bytes + 2 * w_bytes + 2 * N_HID * 4) * inflation
        semantic_d2h = (w_bytes + N_HID * 4) * inflation
        self.send_pad(api, max(int((self.modeled_h2d - semantic_h2d)
                                   / inflation), 0), seed=11)
        self.fetch_pad(api, module, max(int((self.modeled_d2h - semantic_d2h)
                                            / inflation), 0))
        for ptr in (d_x, d_w, d_wprev, d_hid, d_delta):
            api.cuMemFree(ptr)
