"""Pathfinder (PF): 8192x8192 grid dynamic programming.

Bottom-up DP over grid rows: ``rodinia.pf_rows`` advances the cost
vector through a band of rows per launch (Rodinia's pyramid height).
PF moves the largest input of the suite (256 MB grid) but returns only
the final 32 KB cost row, which is why the paper reports its largest
HIX overhead (+154%): the run is transfer-dominated and every byte pays
for encryption.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import KB, MB, Workload
from repro.workloads.calibration import RODINIA_COMPUTE_SECONDS
from repro.workloads.rodinia._common import read_i32, registry, write_arr

N = 8192
PYRAMID_HEIGHT = 64


def _advance(cost: np.ndarray, row: np.ndarray) -> np.ndarray:
    """dst[j] = row[j] + min(cost[j-1], cost[j], cost[j+1])."""
    left = np.concatenate(([cost[0]], cost[:-1]))
    right = np.concatenate((cost[1:], [cost[-1]]))
    return row + np.minimum(np.minimum(left, cost), right)


@registry.kernel("rodinia.pf_rows")
def _pf_rows(dev, ctx, params) -> None:
    """(grid, cost, cols, row0, nrows) — advance cost through a row band."""
    grid_ptr, cost_ptr, cols, row0, nrows = params
    cost = read_i32(dev, ctx, cost_ptr, cols).astype(np.int64)
    for i in range(row0, row0 + nrows):
        raw = dev.read_ctx(ctx, grid_ptr.addr + i * cols * 4, cols * 4)
        row = np.frombuffer(raw, dtype=np.int32).astype(np.int64)
        cost = _advance(cost, row)
    write_arr(dev, ctx, cost_ptr, cost.astype(np.int32))


class Pathfinder(Workload):
    app_code = "PF"
    name = "pathfinder"
    problem_desc = "8192x8192 points"
    modeled_h2d = int(256.0 * MB)
    modeled_d2h = int(32.00 * KB)
    n_launches = N // PYRAMID_HEIGHT
    compute_seconds = RODINIA_COMPUTE_SECONDS["PF"]

    def run(self, api, inflation: float = 1.0) -> None:
        n = self.scaled_dim(N, inflation)
        rng = np.random.default_rng(seed=43)
        grid = rng.integers(0, 10, size=(n, n), dtype=np.int32)

        d_grid = api.cuMemAlloc(grid.nbytes)
        d_cost = api.cuMemAlloc(n * 4)
        api.cuMemcpyHtoD(d_grid, grid)
        api.cuMemcpyHtoD(d_cost, grid[0])
        module = api.cuModuleLoad(["rodinia.pf_rows", "builtin.memset32"])
        band = max(n // 64, 1)   # keep functional launch count moderate
        per_launch = self.compute_seconds / max((n - 1 + band - 1) // band, 1)
        row0 = 1
        while row0 < n:
            nrows = min(band, n - row0)
            api.cuLaunchKernel(module, "rodinia.pf_rows",
                               [d_grid, d_cost, n, row0, nrows],
                               compute_seconds=per_launch)
            row0 += nrows
        result = np.frombuffer(api.cuMemcpyDtoH(d_cost, n * 4),
                               dtype=np.int32)

        expected = grid[0].astype(np.int64)
        for i in range(1, n):
            expected = _advance(expected, grid[i].astype(np.int64))
        self.check(bool((result == expected.astype(np.int32)).all()),
                   "DP cost row mismatch")
        api.cuMemFree(d_grid)
        api.cuMemFree(d_cost)
