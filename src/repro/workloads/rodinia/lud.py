"""LU Decomposition (LUD): 2048x2048, blocked Doolittle.

Rodinia's authentic three-kernel structure per block step:

* ``rodinia.lud_diagonal``  — factor the BxB diagonal block in place;
* ``rodinia.lud_perimeter`` — triangular-solve the row panel (L_d^-1 U)
  and the column panel (L U_d^-1) against the fresh diagonal factors;
* ``rodinia.lud_internal``  — rank-B trailing update of the submatrix.

The result is the compact in-place LU (unit lower diagonal) the original
benchmark produces; verification reconstructs L @ U and also
cross-checks the first block column against an unblocked elimination.
Table 5: 16 MB each way (the float32 matrix in, packed factors out).
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import solve_triangular

from repro.workloads.base import MB, Workload
from repro.workloads.calibration import RODINIA_COMPUTE_SECONDS
from repro.workloads.rodinia._common import read_f32, registry, write_arr

N = 2048
BLOCK = 16


def _read_matrix(dev, ctx, a_ptr, n):
    return read_f32(dev, ctx, a_ptr, n * n).reshape(n, n).astype(np.float64)


@registry.kernel("rodinia.lud_diagonal")
def _lud_diagonal(dev, ctx, params) -> None:
    """In-place LU of the diagonal block: (a, n, k0, bs)."""
    a_ptr, n, k0, bs = params
    a = _read_matrix(dev, ctx, a_ptr, n)
    end = min(k0 + bs, n)
    block = a[k0:end, k0:end]
    for k in range(end - k0 - 1):
        block[k + 1:, k] /= block[k, k]
        block[k + 1:, k + 1:] -= np.outer(block[k + 1:, k], block[k, k + 1:])
    write_arr(dev, ctx, a_ptr, a.astype(np.float32))


@registry.kernel("rodinia.lud_perimeter")
def _lud_perimeter(dev, ctx, params) -> None:
    """Row/column panel solves against the diagonal factors: (a, n, k0, bs)."""
    a_ptr, n, k0, bs = params
    a = _read_matrix(dev, ctx, a_ptr, n)
    end = min(k0 + bs, n)
    if end >= n:
        return
    diag = a[k0:end, k0:end]
    lower = np.tril(diag, -1) + np.eye(end - k0)
    upper = np.triu(diag)
    # Row panel: A[k0:end, end:] <- L_d^-1 @ A[k0:end, end:]
    a[k0:end, end:] = solve_triangular(lower, a[k0:end, end:],
                                       lower=True, unit_diagonal=True)
    # Column panel: A[end:, k0:end] <- A[end:, k0:end] @ U_d^-1
    a[end:, k0:end] = solve_triangular(upper.T, a[end:, k0:end].T,
                                       lower=True).T
    write_arr(dev, ctx, a_ptr, a.astype(np.float32))


@registry.kernel("rodinia.lud_internal")
def _lud_internal(dev, ctx, params) -> None:
    """Trailing update: A[end:, end:] -= col_panel @ row_panel."""
    a_ptr, n, k0, bs = params
    a = _read_matrix(dev, ctx, a_ptr, n)
    end = min(k0 + bs, n)
    if end >= n:
        return
    a[end:, end:] -= a[end:, k0:end] @ a[k0:end, end:]
    write_arr(dev, ctx, a_ptr, a.astype(np.float32))


class Lud(Workload):
    app_code = "LUD"
    name = "lud"
    problem_desc = "2048x2048 points"
    modeled_h2d = int(16.00 * MB)
    modeled_d2h = int(16.00 * MB)
    n_launches = 3 * (N // BLOCK)   # diagonal + perimeter + internal per block
    compute_seconds = RODINIA_COMPUTE_SECONDS["LUD"]

    def run(self, api, inflation: float = 1.0) -> None:
        n = self.scaled_dim(N, inflation)
        n = max(n - n % BLOCK, BLOCK)
        rng = np.random.default_rng(seed=31)
        a0 = (rng.random((n, n), dtype=np.float32)
              + np.float32(n) * np.eye(n, dtype=np.float32))

        nbytes = n * n * 4
        d_a = api.cuMemAlloc(nbytes)
        api.cuMemcpyHtoD(d_a, a0)
        module = api.cuModuleLoad(["rodinia.lud_diagonal",
                                   "rodinia.lud_perimeter",
                                   "rodinia.lud_internal",
                                   "builtin.memset32"])
        per_launch = self.compute_seconds / max(3 * (n // BLOCK), 1)
        for k0 in range(0, n, BLOCK):
            api.cuLaunchKernel(module, "rodinia.lud_diagonal",
                               [d_a, n, k0, BLOCK],
                               compute_seconds=per_launch)
            if k0 + BLOCK < n:
                api.cuLaunchKernel(module, "rodinia.lud_perimeter",
                                   [d_a, n, k0, BLOCK],
                                   compute_seconds=per_launch)
                api.cuLaunchKernel(module, "rodinia.lud_internal",
                                   [d_a, n, k0, BLOCK],
                                   compute_seconds=per_launch)
        lu = np.frombuffer(api.cuMemcpyDtoH(d_a, nbytes),
                           dtype=np.float32).reshape(n, n).astype(np.float64)

        lower = np.tril(lu, -1) + np.eye(n)
        upper = np.triu(lu)
        error = float(np.max(np.abs(lower @ upper - a0.astype(np.float64))))
        self.check(error < 1e-2 * n, f"LU reconstruction error {error:g}")

        # Independent check: the first block column must match a plain
        # unblocked elimination over the same columns.
        plain = a0.astype(np.float64)
        for k in range(BLOCK):
            plain[k + 1:, k] /= plain[k, k]
            plain[k + 1:, k + 1:] -= np.outer(plain[k + 1:, k],
                                              plain[k, k + 1:])
        self.check(bool(np.allclose(lu[:, :BLOCK], plain[:, :BLOCK],
                                    rtol=1e-3, atol=1e-3)),
                   "blocked factors diverge from unblocked elimination")
        api.cuMemFree(d_a)
