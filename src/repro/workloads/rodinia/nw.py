"""Needleman-Wunsch (NW): 4096x4096 sequence-alignment DP.

Rodinia fills the (n+1)^2 score matrix in anti-diagonal waves; the
simulated kernel ``rodinia.nw_band`` processes a band of rows per
launch using the running-maximum trick to resolve the in-row (left)
dependency in vectorized form — identical recurrence, identical result.
Table 5: 128.1 MB HtoD (score + reference matrices), 64.03 MB DtoH
(the filled score matrix).
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import MB, Workload
from repro.workloads.calibration import RODINIA_COMPUTE_SECONDS
from repro.workloads.rodinia._common import read_i32, registry, write_arr

N = 4096
BAND = 16
PENALTY = 10


def _fill_rows(score: np.ndarray, reference: np.ndarray,
               row0: int, nrows: int, penalty: int) -> None:
    """Fill rows [row0, row0+nrows) of the (n+1)^2 score matrix in place.

    Recurrence: F[i,j] = max(F[i-1,j-1] + ref[i,j],
                             F[i-1,j] - p, F[i,j-1] - p).
    Within a row, the left-dependency chain is resolved with the
    prefix-max identity max_k<=j (G[k] - p*(j-k)) =
    (running max of G[k] + p*k) - p*j.
    """
    n1 = score.shape[1]
    j = np.arange(1, n1, dtype=np.int64)
    ramp = penalty * np.arange(n1, dtype=np.int64)
    for i in range(row0, row0 + nrows):
        up = score[i - 1]
        candidates = np.maximum(up[:-1] + reference[i, 1:],
                                up[1:] - penalty)
        # Chain seeded with the fixed first-column value: F[i,j] =
        # max_{0<=k<=j}(H[k]) - p*j with H[k] = G[k] + p*k, H[0] = F[i,0].
        seeded = np.concatenate(([score[i, 0]], candidates))
        chain = np.maximum.accumulate(seeded + ramp)
        score[i, 1:] = chain[1:] - penalty * j


@registry.kernel("rodinia.nw_band")
def _nw_band(dev, ctx, params) -> None:
    """(score, reference, n1, row0, nrows, penalty) — n1 = n + 1."""
    score_ptr, ref_ptr, n1, row0, nrows, penalty = params
    score = read_i32(dev, ctx, score_ptr, n1 * n1).reshape(n1, n1)
    reference = read_i32(dev, ctx, ref_ptr, n1 * n1).reshape(n1, n1)
    work = score.astype(np.int64)
    _fill_rows(work, reference.astype(np.int64), row0, nrows, penalty)
    write_arr(dev, ctx, score_ptr, work.astype(np.int32))


class NeedlemanWunsch(Workload):
    app_code = "NW"
    name = "needleman-wunsch"
    problem_desc = "4096x4096 points"
    modeled_h2d = int(128.1 * MB)
    modeled_d2h = int(64.03 * MB)
    n_launches = N // BAND
    compute_seconds = RODINIA_COMPUTE_SECONDS["NW"]

    def run(self, api, inflation: float = 1.0) -> None:
        n = self.scaled_dim(N, inflation)
        n = max(n - n % BAND, BAND)
        n1 = n + 1
        rng = np.random.default_rng(seed=37)
        reference = rng.integers(-10, 10, size=(n1, n1), dtype=np.int32)
        score = np.zeros((n1, n1), dtype=np.int32)
        score[0, :] = -PENALTY * np.arange(n1)
        score[:, 0] = -PENALTY * np.arange(n1)

        nbytes = n1 * n1 * 4
        d_score = api.cuMemAlloc(nbytes)
        d_ref = api.cuMemAlloc(nbytes)
        api.cuMemcpyHtoD(d_score, score)
        api.cuMemcpyHtoD(d_ref, reference)
        module = api.cuModuleLoad(["rodinia.nw_band", "builtin.memset32"])
        per_launch = self.compute_seconds / max(n // BAND, 1)
        for row0 in range(1, n1, BAND):
            nrows = min(BAND, n1 - row0)
            api.cuLaunchKernel(module, "rodinia.nw_band",
                               [d_score, d_ref, n1, row0, nrows, PENALTY],
                               compute_seconds=per_launch)
        result = np.frombuffer(api.cuMemcpyDtoH(d_score, nbytes),
                               dtype=np.int32).reshape(n1, n1)

        expected = score.astype(np.int64)
        _fill_rows(expected, reference.astype(np.int64), 1, n, PENALTY)
        self.check(bool((result == expected.astype(np.int32)).all()),
                   "alignment score matrix mismatch")
        # Independent check: plain-loop DP on the top-left corner catches
        # any systematic error shared by the kernel and _fill_rows.
        corner = min(n1, 48)
        naive = score[:corner, :corner].astype(np.int64)
        for i in range(1, corner):
            for col in range(1, corner):
                naive[i, col] = max(
                    naive[i - 1, col - 1] + reference[i, col],
                    naive[i - 1, col] - PENALTY,
                    naive[i, col - 1] - PENALTY)
        self.check(bool((result[:corner, :corner]
                         == naive.astype(np.int32)).all()),
                   "scan-trick DP disagrees with the naive recurrence")
        api.cuMemFree(d_score)
        api.cuMemFree(d_ref)
