"""The Rodinia benchmark subset of Table 5 (paper Section 5.3.2).

Nine applications, each with its GPU kernels implemented for real
(numpy) and its transfer volumes matching the paper's Table 5.  The
selection and problem sizes follow the paper, which in turn follows the
original Gdev evaluation.
"""

from typing import Dict, List

from repro.workloads.rodinia.backprop import BackProp
from repro.workloads.rodinia.bfs import Bfs
from repro.workloads.rodinia.gaussian import Gaussian
from repro.workloads.rodinia.hotspot import Hotspot
from repro.workloads.rodinia.lud import Lud
from repro.workloads.rodinia.nn import NearestNeighbor
from repro.workloads.rodinia.nw import NeedlemanWunsch
from repro.workloads.rodinia.pathfinder import Pathfinder
from repro.workloads.rodinia.srad import Srad

#: Paper order (Table 5 / Figure 7 x-axis).
RODINIA_APPS = ("BP", "BFS", "GS", "HS", "LUD", "NW", "NN", "PF", "SRAD")

_CLASSES = {
    "BP": BackProp,
    "BFS": Bfs,
    "GS": Gaussian,
    "HS": Hotspot,
    "LUD": Lud,
    "NW": NeedlemanWunsch,
    "NN": NearestNeighbor,
    "PF": Pathfinder,
    "SRAD": Srad,
}


def rodinia_workloads(apps=RODINIA_APPS) -> List:
    """Instantiate the selected Rodinia workloads in paper order."""
    return [_CLASSES[app]() for app in apps]


__all__ = ["RODINIA_APPS", "rodinia_workloads", "BackProp", "Bfs",
           "Gaussian", "Hotspot", "Lud", "NearestNeighbor",
           "NeedlemanWunsch", "Pathfinder", "Srad"]
