"""Hotspot (HS): 1024x1024 thermal stencil.

One ``rodinia.hs_step`` launch per simulation step applies the classic
five-point thermal update with a power-density source term.  HS's small
transfers (8 MB in, 4 MB out) make it init-dominated, which is why the
paper sees HIX slightly *faster* here.  Table 5: 8 MB HtoD (temperature
+ power grids), 4 MB DtoH (final temperature).
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import MB, Workload
from repro.workloads.calibration import RODINIA_COMPUTE_SECONDS
from repro.workloads.rodinia._common import read_f32, registry, write_arr

N = 1024
STEPS = 5            # functional steps (verified against numpy)
STEPS_MODELED = 60   # Rodinia's default simulation length
ALPHA = 0.18     # diffusion coefficient (stable for the 5-point stencil)
POWER_GAIN = 0.05


def _step(temp: np.ndarray, power: np.ndarray) -> np.ndarray:
    """Reference single step (shared by the kernel and the verifier)."""
    padded = np.pad(temp, 1, mode="edge")
    laplacian = (padded[:-2, 1:-1] + padded[2:, 1:-1]
                 + padded[1:-1, :-2] + padded[1:-1, 2:]
                 - 4.0 * temp)
    return (temp + np.float32(ALPHA) * laplacian
            + np.float32(POWER_GAIN) * power).astype(np.float32)


@registry.kernel("rodinia.hs_step")
def _hs_step(dev, ctx, params) -> None:
    """(temp, power, rows, cols) — updates temp in place."""
    temp_ptr, power_ptr, rows, cols = params
    temp = read_f32(dev, ctx, temp_ptr, rows * cols).reshape(rows, cols)
    power = read_f32(dev, ctx, power_ptr, rows * cols).reshape(rows, cols)
    write_arr(dev, ctx, temp_ptr, _step(temp, power))


class Hotspot(Workload):
    app_code = "HS"
    name = "hotspot"
    problem_desc = "1024x1024 points"
    modeled_h2d = int(8.00 * MB)
    modeled_d2h = int(4.00 * MB)
    n_launches = STEPS_MODELED
    compute_seconds = RODINIA_COMPUTE_SECONDS["HS"]

    def run(self, api, inflation: float = 1.0) -> None:
        n = self.scaled_dim(N, inflation)
        rng = np.random.default_rng(seed=29)
        temp0 = (rng.random((n, n), dtype=np.float32) * 40.0 + 320.0)
        power = rng.random((n, n), dtype=np.float32)

        nbytes = n * n * 4
        d_temp = api.cuMemAlloc(nbytes)
        d_power = api.cuMemAlloc(nbytes)
        api.cuMemcpyHtoD(d_temp, temp0)
        api.cuMemcpyHtoD(d_power, power)
        module = api.cuModuleLoad(["rodinia.hs_step", "builtin.memset32"])
        per_launch = self.per_launch_seconds()
        for _ in range(STEPS):
            api.cuLaunchKernel(module, "rodinia.hs_step",
                               [d_temp, d_power, n, n],
                               compute_seconds=per_launch)
        result = np.frombuffer(api.cuMemcpyDtoH(d_temp, nbytes),
                               dtype=np.float32).reshape(n, n)

        expected = temp0.copy()
        for _ in range(STEPS):
            expected = _step(expected, power)
        self.check_close(result, expected, "temperature field", rtol=1e-3)
        api.cuMemFree(d_temp)
        api.cuMemFree(d_power)
