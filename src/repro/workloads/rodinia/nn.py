"""K-Nearest Neighbors (NN): distances to ~42k hurricane records.

One ``rodinia.nn_dist`` launch computes Euclidean distances from a
target coordinate to every (lat, lng) record; the host selects the k
nearest, as Rodinia does.  Table 5: 334.1 KB HtoD (the record array,
8 B each), 167.05 KB DtoH (the float32 distance array) — the smallest
workload in the suite, dominated by task initialization.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.base import KB, Workload
from repro.workloads.calibration import RODINIA_COMPUTE_SECONDS
from repro.workloads.rodinia._common import read_f32, registry, write_arr

N_RECORDS = 42_765   # 334.1 KB / 8 bytes per (lat, lng) record
K_NEIGHBORS = 10
TARGET = (30.0, -90.0)


@registry.kernel("rodinia.nn_dist")
def _nn_dist(dev, ctx, params) -> None:
    """(locations, dist, n, lat, lng): dist[i] = ||loc[i] - target||."""
    loc_ptr, dist_ptr, n, lat, lng = params
    locations = read_f32(dev, ctx, loc_ptr, n * 2).reshape(n, 2)
    delta = locations - np.array([lat, lng], dtype=np.float32)
    write_arr(dev, ctx, dist_ptr,
              np.sqrt((delta * delta).sum(axis=1)).astype(np.float32))


class NearestNeighbor(Workload):
    app_code = "NN"
    name = "nn"
    problem_desc = "default inputs (42,765 records)"
    modeled_h2d = int(334.1 * KB)
    modeled_d2h = int(167.05 * KB)
    n_launches = 1
    compute_seconds = RODINIA_COMPUTE_SECONDS["NN"]

    def run(self, api, inflation: float = 1.0) -> None:
        n = self.scaled_elems(N_RECORDS, inflation)
        rng = np.random.default_rng(seed=41)
        locations = np.empty((n, 2), dtype=np.float32)
        locations[:, 0] = rng.random(n, dtype=np.float32) * 60.0   # lat
        locations[:, 1] = rng.random(n, dtype=np.float32) * -120.0  # lng

        d_loc = api.cuMemAlloc(locations.nbytes)
        d_dist = api.cuMemAlloc(n * 4)
        api.cuMemcpyHtoD(d_loc, locations)
        module = api.cuModuleLoad(["rodinia.nn_dist", "builtin.memset32"])
        api.cuLaunchKernel(module, "rodinia.nn_dist",
                           [d_loc, d_dist, n, TARGET[0], TARGET[1]],
                           compute_seconds=self.compute_seconds)
        dist = np.frombuffer(api.cuMemcpyDtoH(d_dist, n * 4),
                             dtype=np.float32)

        expected = np.sqrt(((locations
                             - np.array(TARGET, dtype=np.float32)) ** 2
                            ).sum(axis=1))
        self.check_close(dist, expected, "distance array", rtol=1e-4)
        k = min(K_NEIGHBORS, n)
        nearest = np.argsort(dist)[:k]
        self.check(bool((np.sort(dist[nearest])
                         == np.sort(np.sort(expected)[:k])).all()),
                   "k-nearest selection mismatch")
        api.cuMemFree(d_loc)
        api.cuMemFree(d_dist)
