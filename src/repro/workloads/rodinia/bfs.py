"""Breadth-First Search (BFS): 1,000,000-node random graph.

Level-synchronous BFS, one ``rodinia.bfs_level`` launch per frontier
level, exactly Rodinia's structure.  Table 5: 45.78 MB HtoD (CSR nodes,
edges, masks), 3.81 MB DtoH (the int32 distance array, 4 B x 1e6).
"""

from __future__ import annotations

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import shortest_path

from repro.workloads.base import MB, Workload
from repro.workloads.calibration import RODINIA_COMPUTE_SECONDS
from repro.workloads.rodinia._common import read_i32, registry, write_arr

N_NODES = 1_000_000
AVG_DEGREE = 8


@registry.kernel("rodinia.bfs_level")
def _bfs_level(dev, ctx, params) -> None:
    """Expand one frontier level: (offsets, edges, dist, flag, n, level).

    Writes the number of newly-discovered nodes into *flag* so the host
    can poll a 4-byte stop condition instead of the whole distance array
    (Rodinia's ``h_over`` flag).
    """
    off_ptr, edge_ptr, dist_ptr, flag_ptr, n, level = params
    offsets = read_i32(dev, ctx, off_ptr, n + 1)
    dist = read_i32(dev, ctx, dist_ptr, n)
    discovered = 0
    frontier = np.where(dist == level)[0].astype(np.int64)
    if frontier.size:
        starts = offsets[frontier].astype(np.int64)
        counts = (offsets[frontier + 1] - offsets[frontier]).astype(np.int64)
        total = int(counts.sum())
        if total:
            edges = read_i32(dev, ctx, edge_ptr, int(offsets[n]))
            base = np.repeat(starts - np.concatenate(
                ([0], np.cumsum(counts)[:-1])), counts)
            flat = edges[base + np.arange(total)]
            fresh = np.unique(flat[dist[flat] == -1])
            discovered = int(fresh.size)
            dist[fresh] = level + 1
    write_arr(dev, ctx, dist_ptr, dist)
    write_arr(dev, ctx, flag_ptr, np.array([discovered], dtype=np.int32))


class Bfs(Workload):
    app_code = "BFS"
    name = "bfs"
    problem_desc = "1,000,000 nodes"
    modeled_h2d = int(45.78 * MB)
    modeled_d2h = int(3.81 * MB)
    n_launches = 8   # typical frontier depth of the degree-8 random graph
    compute_seconds = RODINIA_COMPUTE_SECONDS["BFS"]

    def run(self, api, inflation: float = 1.0) -> None:
        n = self.scaled_elems(N_NODES, inflation)
        rng = np.random.default_rng(seed=13)
        degrees = rng.poisson(AVG_DEGREE, size=n).astype(np.int32)
        offsets = np.zeros(n + 1, dtype=np.int32)
        np.cumsum(degrees, out=offsets[1:])
        n_edges = int(offsets[-1])
        edges = rng.integers(0, n, size=max(n_edges, 1), dtype=np.int32)

        dist = np.full(n, -1, dtype=np.int32)
        dist[0] = 0
        d_off = api.cuMemAlloc(offsets.nbytes)
        d_edges = api.cuMemAlloc(max(edges.nbytes, 4))
        d_dist = api.cuMemAlloc(dist.nbytes)
        d_flag = api.cuMemAlloc(4)
        api.cuMemcpyHtoD(d_off, offsets)
        api.cuMemcpyHtoD(d_edges, edges)
        api.cuMemcpyHtoD(d_dist, dist)
        module = api.cuModuleLoad(["rodinia.bfs_level", "builtin.memset32"])

        per_launch = self.per_launch_seconds()
        level = 0
        while level <= 64:
            api.cuLaunchKernel(module, "rodinia.bfs_level",
                               [d_off, d_edges, d_dist, d_flag, n, level],
                               compute_seconds=per_launch)
            level += 1
            flag = np.frombuffer(api.cuMemcpyDtoH(d_flag, 4), dtype=np.int32)
            if int(flag[0]) == 0:
                break
        result = np.frombuffer(api.cuMemcpyDtoH(d_dist, dist.nbytes),
                               dtype=np.int32)

        graph = csr_matrix(
            (np.ones(n_edges, dtype=np.int8), edges[:n_edges], offsets),
            shape=(n, n))
        reference = shortest_path(graph, method="D", unweighted=True,
                                  indices=0)
        expected = np.where(np.isinf(reference), -1,
                            reference).astype(np.int32)
        self.check(bool((result == expected).all()),
                   "BFS distances diverge from scipy reference")

        # Intermediate distance readbacks above are part of the real BFS
        # loop; pad the remaining HtoD volume up to Table 5.
        semantic_h2d = (offsets.nbytes + edges.nbytes + dist.nbytes) * inflation
        self.send_pad(api, max(int((self.modeled_h2d - semantic_h2d)
                                   / inflation), 0), seed=17)
        for ptr in (d_off, d_edges, d_dist, d_flag):
            api.cuMemFree(ptr)
