"""Shared helpers for the Rodinia kernel implementations."""

from __future__ import annotations

import numpy as np

from repro.gpu.kernels import global_registry

registry = global_registry()


def read_f32(dev, ctx, ptr, count: int) -> np.ndarray:
    raw = dev.read_ctx(ctx, ptr.addr, count * 4)
    return np.frombuffer(raw, dtype=np.float32).copy()


def read_i32(dev, ctx, ptr, count: int) -> np.ndarray:
    raw = dev.read_ctx(ctx, ptr.addr, count * 4)
    return np.frombuffer(raw, dtype=np.int32).copy()


def write_arr(dev, ctx, ptr, arr: np.ndarray) -> None:
    dev.write_ctx(ctx, ptr.addr, np.ascontiguousarray(arr).tobytes())


def sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-x))
