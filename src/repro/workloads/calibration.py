"""Calibrated per-application modeled GPU compute times.

The paper's testbed (GTX 580 + i7-6700) is unavailable, so absolute
kernel times cannot be measured; instead each application's total GPU
compute time is a calibrated constant chosen so that the *shape* of the
paper's results holds on the simulated testbed:

* Figure 6: matrix addition crypto-bound (~2.5x under HIX), matrix
  multiplication compute-bound (+6.3% at 11264).
* Figure 7: BP/NW/PF the worst cases (+81.5% / +70.1% / +154%), GS
  comparable, HS/LUD/NN slightly faster under HIX (lower task init).
* Figures 8/9: multi-user degradation ~45%/~40% vs parallel Gdev.

Derivation: given the cost model's transfer/crypto parameters, the
per-app overhead delta under HIX is (to first order) fixed by the
transfer sizes of Table 5; the compute constant is then solved from the
paper's reported per-app overhead ratio.  EXPERIMENTS.md records the
paper-vs-measured outcome for every entry.
"""

from __future__ import annotations

from typing import Dict

#: Modeled GPU compute seconds per whole-application run (single user).
RODINIA_COMPUTE_SECONDS: Dict[str, float] = {
    "BP": 0.038,     # back propagation: two big layer kernels
    "BFS": 0.186,    # frontier expansion, memory bound
    "GS": 0.96,      # 2047 columns x 2 kernels, compute dominant
    "HS": 0.065,     # 60 stencil steps on 1024x1024
    "LUD": 0.052,    # block LU on 2048x2048
    "NW": 0.038,     # anti-diagonal DP waves
    "NN": 0.002,     # tiny distance kernel
    "PF": 0.005,     # row DP, utterly transfer-dominated
    "SRAD": 0.136,   # diffusion iterations on 3096x2048
}

#: Effective integer-op throughput of the modeled GTX 580 for the matrix
#: microbenchmarks (ops/second).  Addition is bandwidth-trivial; the
#: multiply rate is tuned so the 11264 point lands at ~+6.3% under HIX.
MATRIX_ADD_OPS_PER_SECOND = 80e9
MATRIX_MUL_OPS_PER_SECOND = 280e9


def matrix_add_compute_seconds(dim: int) -> float:
    return (dim * dim) / MATRIX_ADD_OPS_PER_SECOND


def matrix_mul_compute_seconds(dim: int) -> float:
    return (2.0 * dim * dim * dim) / MATRIX_MUL_OPS_PER_SECOND
