"""Matrix operation microbenchmarks (paper Section 5.3.1, Table 4, Figure 6).

Integer matrix addition (A + B = C) and multiplication (A x B = C) over
the four sizes of Table 4.  Addition has a low compute-to-communication
ratio (crypto dominates under HIX, ~2.5x slower); multiplication's cubic
compute swamps the security overhead (+6.3% at 11264).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.workloads.base import Workload
from repro.workloads.calibration import (
    matrix_add_compute_seconds,
    matrix_mul_compute_seconds,
)

#: The four matrix dimensions of Table 4.
MATRIX_SIZES: Tuple[int, ...] = (2048, 4096, 8192, 11264)

_INT = np.int32
_ELEM = 4  # bytes per int32


def matrix_data_sizes(dim: int) -> Dict[str, int]:
    """Table 4 row for one matrix size: HtoD / DtoH / total bytes."""
    h2d = 2 * dim * dim * _ELEM     # A and B
    d2h = dim * dim * _ELEM         # C
    return {"h2d": h2d, "d2h": d2h, "total": h2d + d2h}


class _MatrixWorkload(Workload):
    """Common allocation/copy skeleton for both matrix operations."""

    kernel_name = ""

    def __init__(self, dim: int) -> None:
        self.dim = dim
        sizes = matrix_data_sizes(dim)
        self.modeled_h2d = sizes["h2d"]
        self.modeled_d2h = sizes["d2h"]
        self.n_launches = 1
        self.problem_desc = f"{dim}x{dim}"
        self.name = f"{self.app_code}-{dim}"

    def _expected(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def run(self, api, inflation: float = 1.0) -> None:
        dim = self.scaled_dim(self.dim, inflation)
        rng = np.random.default_rng(seed=self.dim)
        a = rng.integers(0, 64, size=(dim, dim), dtype=_INT)
        b = rng.integers(0, 64, size=(dim, dim), dtype=_INT)
        nbytes = dim * dim * _ELEM

        d_a = api.cuMemAlloc(nbytes)
        d_b = api.cuMemAlloc(nbytes)
        d_c = api.cuMemAlloc(nbytes)
        api.cuMemcpyHtoD(d_a, a)
        api.cuMemcpyHtoD(d_b, b)
        module = api.cuModuleLoad([self.kernel_name])
        api.cuLaunchKernel(module, self.kernel_name,
                           self._params(d_a, d_b, d_c, dim),
                           compute_seconds=self.compute_seconds)
        result = np.frombuffer(api.cuMemcpyDtoH(d_c, nbytes),
                               dtype=_INT).reshape(dim, dim)
        self.check_close(result, self._expected(a, b), "result matrix")
        for ptr in (d_a, d_b, d_c):
            api.cuMemFree(ptr)

    def _params(self, d_a, d_b, d_c, dim):
        raise NotImplementedError


class MatrixAdd(_MatrixWorkload):
    """Integer matrix addition: one element-wise kernel."""

    app_code = "matrix-add"
    kernel_name = "builtin.matrix_add"

    def __init__(self, dim: int) -> None:
        super().__init__(dim)
        self.compute_seconds = matrix_add_compute_seconds(dim)

    def _params(self, d_a, d_b, d_c, dim):
        return [d_a, d_b, d_c, dim * dim]

    def _expected(self, a, b):
        return a + b


class MatrixMul(_MatrixWorkload):
    """Integer matrix multiplication: one cubic kernel."""

    app_code = "matrix-mul"
    kernel_name = "builtin.matrix_mul"

    def __init__(self, dim: int) -> None:
        super().__init__(dim)
        self.compute_seconds = matrix_mul_compute_seconds(dim)

    def _params(self, d_a, d_b, d_c, dim):
        return [d_a, d_b, d_c, dim]

    def _expected(self, a, b):
        return np.rint(a.astype(np.float64)
                       @ b.astype(np.float64)).astype(_INT)
