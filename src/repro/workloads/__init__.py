"""Workloads: the matrix microbenchmarks and the Rodinia suite subset.

Each workload runs *functionally* (real numpy math on real, scaled-down
buffers, outputs verified) against either API facade — the Gdev baseline
or the HIX trusted runtime — while the cost model charges simulated time
for the paper's full problem sizes.  The per-app modeled GPU compute
times live in :mod:`repro.workloads.calibration`.
"""

from repro.workloads.base import Phase, Workload, WorkloadError
from repro.workloads.matrix import (
    MATRIX_SIZES,
    MatrixAdd,
    MatrixMul,
    matrix_data_sizes,
)
from repro.workloads.rodinia import RODINIA_APPS, rodinia_workloads

__all__ = [
    "Workload",
    "WorkloadError",
    "Phase",
    "MatrixAdd",
    "MatrixMul",
    "MATRIX_SIZES",
    "matrix_data_sizes",
    "RODINIA_APPS",
    "rodinia_workloads",
]
