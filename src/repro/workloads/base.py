"""Workload abstraction shared by the harness, figures, and examples."""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import ReproError

MB = 1 << 20
KB = 1 << 10


class WorkloadError(ReproError):
    """A workload's functional verification failed."""


@dataclass(frozen=True)
class Phase:
    """One phase of a workload's execution profile (for the multi-user model).

    ``kind`` is ``h2d``/``d2h`` (with modeled ``nbytes``) or ``compute``
    (with ``launches`` kernel launches totalling ``seconds`` of GPU time).
    """

    kind: str
    nbytes: int = 0
    launches: int = 0
    seconds: float = 0.0


class Workload(ABC):
    """A GPU application runnable on either the Gdev or HIX facade.

    Subclasses define the paper-reported transfer sizes (Tables 4/5),
    the launch count, the calibrated modeled compute time, and a
    :meth:`run` that performs real (scaled) computation and verifies its
    results.  ``inflation`` is the machine's data-inflation factor: a
    run moves ``modeled_bytes / inflation`` real bytes.
    """

    #: short code used in the paper's tables (e.g. "BP").
    app_code: str = ""
    name: str = ""
    problem_desc: str = ""
    modeled_h2d: int = 0
    modeled_d2h: int = 0
    n_launches: int = 1
    compute_seconds: float = 0.0

    @abstractmethod
    def run(self, api, inflation: float = 1.0) -> None:
        """Execute the workload against *api*, verifying outputs."""

    # -- derived helpers -------------------------------------------------------

    def per_launch_seconds(self) -> float:
        return self.compute_seconds / max(self.n_launches, 1)

    def phases(self) -> List[Phase]:
        """Default profile: copy-in, compute, copy-out."""
        return [
            Phase("h2d", nbytes=self.modeled_h2d),
            Phase("compute", launches=self.n_launches,
                  seconds=self.compute_seconds),
            Phase("d2h", nbytes=self.modeled_d2h),
        ]

    def scaled_elems(self, elems: int, inflation: float) -> int:
        """Scale a linear element count by the inflation factor (min 16)."""
        return max(int(elems / inflation), 16)

    def scaled_dim(self, dim: int, inflation: float) -> int:
        """Scale a 2-D dimension so the *byte* count scales by 1/inflation."""
        return max(int(dim / math.sqrt(inflation)), 4)

    def check(self, condition: bool, message: str) -> None:
        if not condition:
            raise WorkloadError(f"{self.name}: {message}")

    def check_close(self, got: np.ndarray, want: np.ndarray,
                    what: str, rtol: float = 1e-4) -> None:
        if not np.allclose(got, want, rtol=rtol, atol=1e-5):
            worst = float(np.max(np.abs(got.astype(np.float64)
                                        - want.astype(np.float64))))
            raise WorkloadError(
                f"{self.name}: {what} mismatch (max abs err {worst:g})")

    # -- padding transfers -------------------------------------------------------
    #
    # Table 5's HtoD/DtoH byte counts include Rodinia buffers whose content
    # is irrelevant to the kernels modeled here (masks, scratch, previous-
    # iteration copies).  Workloads move those bytes as explicit padding
    # buffers so the wire traffic matches the paper exactly; outbound
    # padding is GPU-filled with a known pattern and verified on readback.

    _PAD_FILL = 0x5A5A5A5A

    def send_pad(self, api, nbytes: int, seed: int = 0) -> None:
        """HtoD-only padding: ship *nbytes* of pseudo-random bytes."""
        if nbytes <= 0:
            return
        rng = np.random.default_rng(seed=seed or 1)
        data = rng.integers(0, 256, size=nbytes, dtype=np.uint8)
        ptr = api.cuMemAlloc(nbytes)
        api.cuMemcpyHtoD(ptr, data)
        api.cuMemFree(ptr)

    def fetch_pad(self, api, module, nbytes: int) -> None:
        """DtoH-only padding: GPU-fill with a pattern, read back, verify.

        *module* must contain ``builtin.memset32``.
        """
        if nbytes <= 0:
            return
        words = max(nbytes // 4, 1)
        ptr = api.cuMemAlloc(words * 4)
        api.cuLaunchKernel(module, "builtin.memset32",
                           [ptr, words, self._PAD_FILL & 0x7FFFFFFF])
        out = np.frombuffer(api.cuMemcpyDtoH(ptr, words * 4), dtype=np.uint32)
        self.check(bool((out == (self._PAD_FILL & 0x7FFFFFFF)).all()),
                   "outbound padding pattern corrupted")
        api.cuMemFree(ptr)

    def __repr__(self) -> str:
        return f"<Workload {self.app_code or self.name}>"
