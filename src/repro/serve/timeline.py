"""Virtual-time multiplexing: one GPU engine, many tenants.

The serving engine executes tenants' sealed requests one at a time on
the shared machine (real bytes, real crypto), but *concurrency* is a
scheduling question: host-side work of different tenants overlaps
freely while GPU-engine work serializes, paying a context-switch cost
whenever the engine changes owner (paper Section 4.5).  This module is
the serving layer's surface over the shared discrete-event kernel
(:mod:`repro.sim.engine`): it turns per-request ``(host, gpu)``
durations into per-tenant timelines and a makespan, with the dispatch
order chosen by a pluggable :class:`~repro.serve.scheduler.Scheduler`.

Historically this module carried its own event loop, which diverged
from the analytic oracle (:func:`repro.core.multiuser.simulate_concurrent`)
on simultaneous-event tie-breaks: it drained every event up to the
dispatch instant before arbitrating, while the oracle pre-reserved the
engine the moment a gpu event popped.  The unified kernel's single
ordering rule — arrival-order seqs, synchronous dispatch at arrival,
engine-free decisions ahead of same-time events — closes that gap:
FIFO now reproduces the oracle *exactly on all inputs*, ties included
(pinned by ``tests/property/test_prop_engine.py`` against the retired
implementations in ``tests/property/oracles.py``).  Every
work-conserving scheduler still matches the oracle exactly on
single-visit-per-tenant inputs (busy-period order-invariance), and the
deficit-fair scheduler tracks it within ~1e-2 relative on
workload-shaped inputs, which is what makes serving-layer makespans
cross-checkable against the Figures 8/9 machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.core.multiuser import Segment, UserTimeline
from repro.sim.engine import (  # noqa: F401  (public re-exports)
    TenantLane,
    Visit,
    WorkUnit,
    run_lanes,
)
from repro.sim.trace import TraceEvent


@dataclass
class MultiplexResult:
    """Outcome of one multiplexed run over virtual time."""

    makespan: float
    timelines: List[UserTimeline]
    context_switches: int
    served: List[int]
    timed_out: List[int]
    stall_seconds: List[float]           # host blocked on the inflight cap
    events: List[Tuple[int, TraceEvent]] = field(default_factory=list)

    @property
    def gpu_utilization(self) -> float:
        if self.makespan <= 0.0:
            return 0.0
        return sum(t.gpu_busy for t in self.timelines) / self.makespan

    def stats(self) -> Dict[str, float]:
        """The same summary dict :func:`simulate_concurrent` returns."""
        return {
            "context_switches": float(self.context_switches),
            "gpu_utilization": self.gpu_utilization,
        }


def multiplex(lanes: Sequence[TenantLane], scheduler,
              ctx_switch_cost: float) -> MultiplexResult:
    """Run every lane to exhaustion over one shared GPU engine.

    Host parts run back-to-back on each tenant's own (virtual) core;
    GPU visits queue per tenant and the *scheduler* picks which ready
    queue head owns the engine next.  A context switch is charged
    whenever the engine changes owner (first occupancy is free, as in
    the analytic model).  Unit streams are pulled lazily by the kernel
    lane processes, so the real serving engine can execute sealed
    requests at production time and feed their measured costs straight
    into virtual time.
    """
    result = run_lanes(lanes, scheduler, ctx_switch_cost)
    return MultiplexResult(
        makespan=result.makespan,
        timelines=[UserTimeline(t.finish_time, t.gpu_busy, t.host_busy,
                                t.waits) for t in result.timelines],
        context_switches=result.context_switches,
        served=result.served,
        timed_out=result.timed_out,
        stall_seconds=result.stall_seconds,
        events=result.events)


def segments_to_units(segments: Sequence[Segment]) -> List[WorkUnit]:
    """One analytic-model segment per unit (no merging, exact ordering)."""
    units: List[WorkUnit] = []
    for segment in segments:
        if segment.kind == "host":
            units.append(WorkUnit(segment.duration, None, segment.label))
        else:
            units.append(WorkUnit(0.0, segment.duration, segment.label))
    return units


def schedule_segments(users: Sequence[Sequence[Segment]], scheduler,
                      ctx_switch_cost: float
                      ) -> Tuple[float, List[UserTimeline], Dict[str, float]]:
    """Scheduler-driven drop-in for ``multiuser.simulate_concurrent``.

    Takes the same per-user segment lists and context-switch cost, and
    returns the same ``(makespan, timelines, stats)`` tuple — with the
    engine's arbitration chosen by *scheduler* instead of hard-wired
    FIFO.  With :class:`~repro.serve.scheduler.FifoScheduler` the result
    matches ``simulate_concurrent`` exactly on **all** inputs,
    simultaneous-event ties included — both run on the same kernel, and
    the kernel's arrival-order rule is pinned to the retired oracle by
    the property suite.  This is the cross-check bridge between the
    serving layer and the paper's Figures 8/9 model.
    """
    lanes = [TenantLane(units=segments_to_units(segments), max_inflight=1)
             for segments in users]
    result = multiplex(lanes, scheduler, ctx_switch_cost)
    return result.makespan, result.timelines, result.stats()
