"""Virtual-time multiplexing: one GPU engine, many tenants.

The serving engine executes tenants' sealed requests one at a time on
the shared machine (real bytes, real crypto), but *concurrency* is a
scheduling question: host-side work of different tenants overlaps
freely while GPU-engine work serializes, paying a context-switch cost
whenever the engine changes owner (paper Section 4.5).  This module is
the discrete-event core that turns per-request ``(host, gpu)`` durations
into per-tenant timelines and a makespan, with the dispatch order chosen
by a pluggable :class:`~repro.serve.scheduler.Scheduler`.

The core deliberately mirrors the analytic model in
:func:`repro.core.multiuser.simulate_concurrent`, with one semantic
difference: this engine defers its choice to dispatch time (so any
scheduler can arbitrate), while the oracle pre-reserves the engine the
moment a gpu segment's event pops.  The two coincide except on
simultaneous-event tie-breaks.  Validated equivalences (see the
property suite): FIFO reproduces the oracle's makespan exactly on
identical-user inputs and on tie-free inputs generally; *every*
work-conserving scheduler matches it exactly on single-visit-per-tenant
inputs, where busy periods are order-invariant; and the deficit-fair
scheduler tracks it within ~1e-2 relative on workload-shaped inputs,
which is what makes serving-layer makespans cross-checkable against
the Figures 8/9 machinery.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Callable,
    Deque,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.multiuser import Segment, UserTimeline
from repro.sim.trace import TraceEvent


@dataclass
class WorkUnit:
    """One schedulable unit of tenant work.

    ``host_seconds`` of sequential host work (overlappable across
    tenants), followed by an optional exclusive GPU-engine visit of
    ``gpu_seconds``.  ``gpu_seconds=None`` means no engine visit at all;
    ``0.0`` is a real (zero-duration) visit that still occupies the
    engine and can force a context switch — matching the analytic
    model's treatment of zero-duration gpu segments.

    ``deadline`` is relative to the moment the visit becomes ready: a
    visit still queued ``deadline`` seconds after its host part finished
    is abandoned (timeout) instead of served.  ``on_outcome`` is called
    with ``"served"`` or ``"timeout"`` when the engine decides.
    """

    host_seconds: float
    gpu_seconds: Optional[float] = None
    label: str = ""
    deadline: Optional[float] = None
    on_outcome: Optional[Callable[[str], None]] = None


@dataclass
class Visit:
    """A pending GPU-engine visit; per-tenant queue heads compete."""

    tenant: int
    seq: int              # producing event's seq (FIFO tie-break)
    ready: float          # when the host-side preparation finished
    gpu_seconds: float
    weight: float = 1.0
    deadline: Optional[float] = None   # absolute virtual seconds
    label: str = ""
    on_outcome: Optional[Callable[[str], None]] = None
    resume_seq: Optional[int] = None   # pre-allocated completion-event seq


@dataclass
class TenantLane:
    """One tenant's unit stream plus its service limits.

    ``max_inflight`` caps how many GPU visits may be queued or in
    service at once; host-side production stalls (backpressure) when
    the cap is reached.  ``max_inflight=1`` gives the strict
    host/gpu alternation of the analytic multi-user model.
    """

    units: Union[Iterable[WorkUnit], Iterator[WorkUnit]]
    weight: float = 1.0
    max_inflight: int = 1


@dataclass
class MultiplexResult:
    """Outcome of one multiplexed run over virtual time."""

    makespan: float
    timelines: List[UserTimeline]
    context_switches: int
    served: List[int]
    timed_out: List[int]
    stall_seconds: List[float]           # host blocked on the inflight cap
    events: List[Tuple[int, TraceEvent]] = field(default_factory=list)

    @property
    def gpu_utilization(self) -> float:
        if self.makespan <= 0.0:
            return 0.0
        return sum(t.gpu_busy for t in self.timelines) / self.makespan

    def stats(self) -> Dict[str, float]:
        """The same summary dict :func:`simulate_concurrent` returns."""
        return {
            "context_switches": float(self.context_switches),
            "gpu_utilization": self.gpu_utilization,
        }


def multiplex(lanes: Sequence[TenantLane], scheduler,
              ctx_switch_cost: float) -> MultiplexResult:
    """Run every lane to exhaustion over one shared GPU engine.

    Host parts run back-to-back on each tenant's own (virtual) core;
    GPU visits queue per tenant and the *scheduler* picks which ready
    queue head owns the engine next.  A context switch is charged
    whenever the engine changes owner (first occupancy is free, as in
    the analytic model).  Unit streams are pulled lazily, so the real
    serving engine can execute sealed requests at production time and
    feed their measured costs straight into this loop.
    """
    n = len(lanes)
    iters = [iter(lane.units) for lane in lanes]
    host_free = [0.0] * n
    outstanding = [0] * n
    blocked = [False] * n
    stall_since = [0.0] * n
    # Block intervals are only charged as stall once the resumed produce
    # actually yields a unit: trailing blocks after an exhausted stream
    # delayed nothing.
    stall_pending: Dict[int, float] = {}
    queues: List[Deque[Visit]] = [deque() for _ in range(n)]
    timelines = [UserTimeline(0.0, 0.0, 0.0, 0.0) for _ in range(n)]
    served = [0] * n
    timed_out = [0] * n
    stall = [0.0] * n
    lane_events: List[Tuple[int, TraceEvent]] = []

    events: List[Tuple[float, int, str, int]] = []
    eseq = itertools.count()
    gpu_free = 0.0
    resident: Optional[int] = None
    switches = 0

    for tenant in range(n):
        heapq.heappush(events, (0.0, next(eseq), "produce", tenant))

    def produce(tenant: int, now: float, tie: int) -> None:
        # Sequence discipline (what keeps FIFO runs aligned with
        # simulate_concurrent): a visit competes under its *producing
        # event's* seq, and a lane that blocks on its inflight cap
        # pre-allocates the seq of its post-completion resume here, at
        # production rank — mirroring the oracle, which pushes a user's
        # next event (allocating the next global seq) the moment its
        # gpu event is popped, not when the engine finishes serving it.
        pending_stall = stall_pending.pop(tenant, None)
        try:
            unit = next(iters[tenant])
        except StopIteration:
            timelines[tenant].finish_time = max(
                timelines[tenant].finish_time, now)
            return
        if pending_stall is not None:
            stall[tenant] += pending_stall
        done = now + unit.host_seconds
        timelines[tenant].host_busy += unit.host_seconds
        timelines[tenant].finish_time = max(
            timelines[tenant].finish_time, done)
        host_free[tenant] = done
        if unit.host_seconds > 0.0:
            lane_events.append(
                (tenant, TraceEvent(now, unit.host_seconds, "host")))
        if unit.gpu_seconds is None:
            heapq.heappush(events, (done, next(eseq), "produce", tenant))
            return
        deadline = None if unit.deadline is None else done + unit.deadline
        visit = Visit(
            tenant=tenant, seq=tie, ready=done,
            gpu_seconds=unit.gpu_seconds, weight=lanes[tenant].weight,
            deadline=deadline, label=unit.label,
            on_outcome=unit.on_outcome)
        queues[tenant].append(visit)
        outstanding[tenant] += 1
        if outstanding[tenant] < lanes[tenant].max_inflight:
            heapq.heappush(events, (done, next(eseq), "produce", tenant))
        else:
            blocked[tenant] = True
            stall_since[tenant] = done
            visit.resume_seq = next(eseq)

    def release_slot(tenant: int, now: float,
                     seq: Optional[int] = None) -> None:
        # The resumed produce reuses the visit's pre-allocated seq
        # (carried through the completion event), keeping same-instant
        # tie-breaks in oracle order.
        outstanding[tenant] -= 1
        if blocked[tenant]:
            blocked[tenant] = False
            stall_pending[tenant] = max(now - stall_since[tenant], 0.0)
            heapq.heappush(events, (max(host_free[tenant], now),
                                    next(eseq) if seq is None else seq,
                                    "produce", tenant))

    while events or any(queues):
        heads = [q[0] for q in queues if q]
        if not heads:
            now, tie, kind, tenant = heapq.heappop(events)
            if kind == "produce":
                produce(tenant, now, tie)
            else:
                release_slot(tenant, now, tie)
            continue

        dispatch_at = max(gpu_free, min(v.ready for v in heads))
        if events and events[0][0] <= dispatch_at:
            now, tie, kind, tenant = heapq.heappop(events)
            if kind == "produce":
                produce(tenant, now, tie)
            else:
                release_slot(tenant, now, tie)
            continue

        # Lazy expiry: queue heads whose deadline passed are abandoned,
        # never served, and their inflight slot is released now.
        expired = False
        for queue in queues:
            while (queue and queue[0].deadline is not None
                   and dispatch_at > queue[0].deadline):
                visit = queue.popleft()
                timed_out[visit.tenant] += 1
                if visit.on_outcome is not None:
                    visit.on_outcome("timeout")
                release_slot(visit.tenant, dispatch_at)
                expired = True
        if expired:
            continue

        candidates = [q[0] for q in queues if q and q[0].ready <= dispatch_at]
        visit = scheduler.select(candidates, resident, dispatch_at)
        if visit not in candidates:  # defensive: scheduler contract
            raise ValueError(
                f"scheduler {scheduler!r} returned a non-candidate visit")
        queues[visit.tenant].popleft()

        start = dispatch_at
        timelines[visit.tenant].waits += start - visit.ready
        if resident is not None and resident != visit.tenant:
            switches += 1
            if ctx_switch_cost > 0.0:
                lane_events.append((visit.tenant, TraceEvent(
                    start, ctx_switch_cost, "ctx_switch")))
            start += ctx_switch_cost
        resident = visit.tenant
        finish = start + visit.gpu_seconds
        timelines[visit.tenant].gpu_busy += visit.gpu_seconds
        timelines[visit.tenant].finish_time = max(
            timelines[visit.tenant].finish_time, finish)
        if visit.gpu_seconds > 0.0:
            lane_events.append((visit.tenant, TraceEvent(
                start, visit.gpu_seconds, "gpu")))
        gpu_free = finish
        served[visit.tenant] += 1
        if visit.on_outcome is not None:
            visit.on_outcome("served")
        resume = (visit.resume_seq if visit.resume_seq is not None
                  else next(eseq))
        heapq.heappush(events, (finish, resume, "complete", visit.tenant))

    makespan = max((t.finish_time for t in timelines), default=0.0)
    return MultiplexResult(
        makespan=makespan, timelines=timelines, context_switches=switches,
        served=served, timed_out=timed_out, stall_seconds=stall,
        events=lane_events)


def segments_to_units(segments: Sequence[Segment]) -> List[WorkUnit]:
    """One analytic-model segment per unit (no merging, exact ordering)."""
    units: List[WorkUnit] = []
    for segment in segments:
        if segment.kind == "host":
            units.append(WorkUnit(segment.duration, None, segment.label))
        else:
            units.append(WorkUnit(0.0, segment.duration, segment.label))
    return units


def schedule_segments(users: Sequence[Sequence[Segment]], scheduler,
                      ctx_switch_cost: float
                      ) -> Tuple[float, List[UserTimeline], Dict[str, float]]:
    """Scheduler-driven drop-in for ``multiuser.simulate_concurrent``.

    Takes the same per-user segment lists and context-switch cost, and
    returns the same ``(makespan, timelines, stats)`` tuple — with the
    engine's arbitration chosen by *scheduler* instead of hard-wired
    FIFO.  With :class:`~repro.serve.scheduler.FifoScheduler` the
    makespan matches ``simulate_concurrent`` exactly on identical-user
    and tie-free inputs (divergence is possible only on simultaneous-
    event tie-breaks, where the oracle's pre-reservation order is
    unreachable from dispatch-time choice); this is the cross-check
    bridge between the serving layer and the paper's Figures 8/9 model.
    """
    lanes = [TenantLane(units=segments_to_units(segments), max_inflight=1)
             for segments in users]
    result = multiplex(lanes, scheduler, ctx_switch_cost)
    return result.makespan, result.timelines, result.stats()
