"""Serve-layer resilience: error taxonomy, retry policy, circuit breaker.

The serving engine survives faults instead of reporting them and moving
on: every dispatch failure is classified into a machine-readable error
*kind* (the structured error reply the satellite fix adds), retryable
kinds are re-executed under an exponential-backoff schedule charged in
virtual time, and a per-tenant circuit breaker sheds load when the
failure rate crosses a threshold so a broken backend is not hammered.

Everything here is deterministic.  Backoff jitter comes from a
``random.Random`` seeded from the engine seed and tenant name (string
seeds hash stably via SHA-512, independent of ``PYTHONHASHSEED``), and
the breaker keeps time in virtual seconds — two runs with the same seed
produce bit-identical schedules.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Deque, Optional, Tuple

from collections import deque

from repro.errors import (
    AdmissionError,
    AttestationError,
    BackpressureError,
    CryptoError,
    GpuUnavailable,
    IntegrityError,
    QueueFullError,
    ReplayError,
    RequestRejected,
)

# Machine-readable failure kinds carried on ServeRequest.error_kind.
KIND_TIMEOUT = "timeout"          # deadline expired on the virtual timeline
KIND_QUEUE_FULL = "queue_full"    # channel/queue backlog (retryable load)
KIND_CRYPTO = "crypto"            # AEAD/replay/attestation failure (tamper)
KIND_DEVICE_LOST = "device_lost"  # GPU enclave or session gone
KIND_QUOTA = "quota"              # admission denial — policy, not a fault
KIND_REJECTED = "rejected"        # structured error reply from the enclave
KIND_DRIVER = "driver"            # other driver/runtime failure
KIND_CIRCUIT_OPEN = "circuit_open"  # shed by the tenant's open breaker
# Attestation failures carry their own structured kinds (set as
# ``error_kind`` on the exception classes in :mod:`repro.errors`), so
# boot/attest failures classify the same way on every TEE backend:
KIND_ATTESTATION = "attestation_mismatch"   # evidence failed verification
KIND_CERT_CHAIN = "cert_chain_invalid"      # chain does not reach the root

#: Kinds that indicate backend ill-health (counted by the breaker).
#: Quota denials are policy decisions and timeouts settle after the
#: execution already returned, so neither trips the breaker.
BREAKER_KINDS = frozenset({KIND_QUEUE_FULL, KIND_CRYPTO, KIND_DEVICE_LOST,
                           KIND_REJECTED, KIND_DRIVER,
                           KIND_ATTESTATION, KIND_CERT_CHAIN})

#: Kinds whose failures warrant a session re-establishment (fresh
#: attestation + key exchange) before the retry: the session or device
#: the request ran against can no longer be trusted or reached.
RECOVERY_KINDS = frozenset({KIND_DEVICE_LOST, KIND_CRYPTO,
                            KIND_ATTESTATION, KIND_CERT_CHAIN})


def classify_failure(exc: BaseException) -> str:
    """Map a dispatch exception to its structured error kind.

    Order matters: the serve-layer errors subclass ``DriverError``, so
    the specific classes are tested before the broad driver bucket.
    """
    if isinstance(exc, AdmissionError):
        return KIND_QUOTA
    if isinstance(exc, (QueueFullError, BackpressureError)):
        return KIND_QUEUE_FULL
    if isinstance(exc, GpuUnavailable):
        return KIND_DEVICE_LOST
    if isinstance(exc, AttestationError):
        # Structured: "attestation_mismatch", or "cert_chain_invalid"
        # for CertChainError — uniform across TEE backends.
        return getattr(exc, "error_kind", KIND_CRYPTO)
    if isinstance(exc, (IntegrityError, ReplayError, CryptoError)):
        return KIND_CRYPTO
    if isinstance(exc, RequestRejected):
        return KIND_REJECTED
    # The runtime raises a plain DriverError when the GPU enclave posted
    # a "gpu-untrusted" note — that is a device loss, not a request bug.
    if "no longer trusted" in str(exc):
        return KIND_DEVICE_LOST
    return KIND_DRIVER


def tenant_rng(seed: int, tenant: str, purpose: str = "retry") -> random.Random:
    """Deterministic per-tenant RNG (stable across processes)."""
    return random.Random(f"{seed}:{tenant}:{purpose}")


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter, in virtual time.

    Attempt ``n`` (1-based) that fails with a kind in ``retry_on`` and
    has attempts remaining sleeps ``base_delay * multiplier**(n-1)``
    scaled by ``1 + jitter * U[0,1)`` before re-executing.  The sleep is
    charged to the tenant's virtual timeline as idle (non-host) time, so
    backoff delays victims honestly without inventing host work.
    """

    max_attempts: int = 3
    base_delay: float = 200e-6
    multiplier: float = 2.0
    jitter: float = 0.5
    retry_on: frozenset = frozenset({KIND_QUEUE_FULL, KIND_DEVICE_LOST,
                                     KIND_CRYPTO, KIND_ATTESTATION,
                                     KIND_CERT_CHAIN})

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0.0 or self.jitter < 0.0:
            raise ValueError("base_delay and jitter must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")

    def retries(self, kind: Optional[str], attempts: int) -> bool:
        """Whether a request that failed *kind* on attempt *attempts*
        (1-based count of executions so far) gets another execution."""
        return kind in self.retry_on and attempts < self.max_attempts

    def backoff(self, attempts: int, rng: random.Random) -> float:
        """Virtual seconds to idle before the next execution."""
        delay = self.base_delay * self.multiplier ** max(attempts - 1, 0)
        return delay * (1.0 + self.jitter * rng.random())


@dataclass(frozen=True)
class BreakerConfig:
    """Thresholds for the per-tenant circuit breaker.

    The breaker watches a sliding window of the last ``window``
    execution outcomes.  Once the window is full and the failure
    fraction reaches ``failure_threshold`` it opens for ``cooldown``
    virtual seconds: fresh requests are shed (outcome ``shed``, kind
    ``circuit_open``, ``retry_after`` = remaining cooldown).  After the
    cooldown one probe request passes through (half-open); success
    closes the breaker and clears the window, failure re-opens it.
    """

    window: int = 8
    failure_threshold: float = 0.5
    cooldown: float = 5e-3

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if not 0.0 < self.failure_threshold <= 1.0:
            raise ValueError("failure_threshold must be in (0, 1]")
        if self.cooldown <= 0.0:
            raise ValueError("cooldown must be > 0")


CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Deterministic failure-rate breaker over virtual time."""

    def __init__(self, config: BreakerConfig) -> None:
        self.config = config
        self.state = CLOSED
        self._outcomes: Deque[bool] = deque(maxlen=config.window)
        self._open_until = 0.0
        self._probing = False
        self.opens = 0
        self.sheds = 0

    def allow(self, now: float) -> Tuple[bool, float]:
        """May a fresh request execute at virtual time *now*?

        Returns ``(allowed, retry_after)``; ``retry_after`` is the
        remaining cooldown when the request is shed, else ``0.0``.
        """
        if self.state == CLOSED:
            return True, 0.0
        if self.state == OPEN:
            if now >= self._open_until:
                self.state = HALF_OPEN
                self._probing = False
            else:
                self.sheds += 1
                return False, self._open_until - now
        # Half-open: exactly one probe may be in flight at a time.
        if self._probing:
            self.sheds += 1
            return False, 0.0
        self._probing = True
        return True, 0.0

    def record_success(self, now: float) -> None:
        if self.state == HALF_OPEN:
            self.state = CLOSED
            self._outcomes.clear()
            self._probing = False
            return
        self._outcomes.append(False)

    def record_failure(self, now: float) -> None:
        if self.state == HALF_OPEN:
            self._trip(now)
            return
        self._outcomes.append(True)
        if len(self._outcomes) < self.config.window:
            return
        failures = sum(self._outcomes)
        if failures / len(self._outcomes) >= self.config.failure_threshold:
            self._trip(now)

    def _trip(self, now: float) -> None:
        self.state = OPEN
        self._open_until = now + self.config.cooldown
        self._outcomes.clear()
        self._probing = False
        self.opens += 1
