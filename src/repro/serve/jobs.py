"""Tenant job streams: a workload's phase profile as sealed requests.

A serving tenant does not call ``workload.run()`` monolithically — a
server admits *requests*.  This module decomposes a workload's modeled
profile (:meth:`Workload.phases`) into the request stream a client of
the serving engine would issue: setup (alloc + module load), chunked
host-to-device uploads, grouped kernel launches, chunked downloads, and
cleanup.  Every request really executes over the sealed protocol — the
uploads move ``modeled / inflation`` real bytes through the single-copy
path, launches run ``builtin.memset32`` with the workload's modeled
compute hint attached — so the per-request times the engine measures
carry the same structure the analytic Figures 8/9 segments assume
(pipelined copies, per-chunk in-GPU crypto, launch-grouped compute).

Chunk/group caps keep wall-clock bounded at high inflation; the launch
cap is compensated exactly like the harness's launch-count correction,
by charging the elided launches' overhead
(``costs.launch_overhead(backend)``) as extra host seconds on the
grouped launch requests.  Pass ``backend=`` matching the machine's
``MachineConfig.backend`` so the compensation uses that backend's
per-launch cost.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.serve.engine import TenantClient
from repro.serve.queues import ServeRequest
from repro.sim.costs import CostModel
from repro.workloads.base import Workload

_MIN_BUFFER = 4096


def _chunk_count(modeled_bytes: float, chunk_bytes: int, cap: int) -> int:
    if modeled_bytes <= 0:
        return 0
    chunks = int(-(-modeled_bytes // chunk_bytes))
    return max(min(chunks, cap), 1)


def submit_workload(client: TenantClient, workload: Workload,
                    inflation: float, costs: CostModel,
                    max_copy_chunks: int = 8,
                    max_launch_groups: int = 8,
                    seed: Optional[int] = None,
                    backend: str = "hix") -> List[ServeRequest]:
    """Queue *workload* on *client* as a stream of serving requests.

    Returns the submitted requests (setup, uploads, launches, downloads,
    cleanup, in order).  Raises :class:`BackpressureError` if the
    tenant's queue cannot hold the stream — size ``max_queue_depth``
    accordingly or lower the chunk caps.
    """
    real_h2d = int(workload.modeled_h2d / inflation)
    real_d2h = int(workload.modeled_d2h / inflation)
    h2d_chunks = _chunk_count(workload.modeled_h2d,
                              costs.pipeline_chunk_bytes, max_copy_chunks)
    d2h_chunks = _chunk_count(workload.modeled_d2h,
                              costs.pipeline_chunk_bytes, max_copy_chunks)
    h2d_per_chunk = (-(-real_h2d // h2d_chunks) if h2d_chunks else 0)
    d2h_per_chunk = (-(-real_d2h // d2h_chunks) if d2h_chunks else 0)
    # One reusable device buffer sized for the largest chunk; word-align
    # for memset32.
    buffer_bytes = max(h2d_per_chunk, d2h_per_chunk, _MIN_BUFFER)
    buffer_bytes += (-buffer_bytes) % 4

    launches = max(workload.n_launches, 0)
    groups = min(launches, max_launch_groups) if launches else 0
    per_group_compute = (workload.compute_seconds / groups) if groups else 0.0
    elided_per_group = 0.0
    if groups:
        elided_per_group = ((launches / groups) - 1.0) \
            * costs.launch_overhead(backend)

    state: Dict[str, object] = {}
    rng = np.random.default_rng(seed if seed is not None else 1)
    submitted: List[ServeRequest] = []

    def setup(api, nbytes: int = buffer_bytes):
        state["dptr"] = api.cuMemAlloc(nbytes)
        state["module"] = api.cuModuleLoad(["builtin.memset32"])

    submitted.append(client.submit(f"{workload.name}:setup", setup))

    def upload_batch(api, requests):
        api.cuMemcpyHtoDBatch(
            [(state["dptr"], request.batch_arg) for request in requests])

    for index in range(h2d_chunks):
        nbytes = min(h2d_per_chunk, real_h2d - index * h2d_per_chunk)
        if nbytes <= 0:
            break
        data = rng.integers(0, 256, size=nbytes, dtype=np.uint8)

        def upload(api, data=data):
            api.cuMemcpyHtoD(state["dptr"], data)

        submitted.append(
            client.submit(f"{workload.name}:h2d[{index}]", upload,
                          memo_key=("h2d", int(nbytes)),
                          batch_key=("h2d", id(state)),
                          batch_arg=data, batch_fn=upload_batch))

    fill_words = min(buffer_bytes // 4, 256)
    fill_value = 0x5A5A5A5A & 0x7FFFFFFF

    def launch_batch(api, requests):
        api.cuLaunchKernelBatch(state["module"], [
            ("builtin.memset32", [state["dptr"], fill_words, fill_value],
             request.batch_arg) for request in requests])

    for index in range(groups):

        def launch(api, hint=per_group_compute):
            api.cuLaunchKernel(state["module"], "builtin.memset32",
                               [state["dptr"], fill_words, fill_value],
                               compute_seconds=hint)

        submitted.append(client.submit(
            f"{workload.name}:launch[{index}]", launch,
            extra_host_seconds=elided_per_group,
            memo_key=("launch", "builtin.memset32", fill_words,
                      per_group_compute),
            batch_key=("launch", id(state)),
            batch_arg=per_group_compute, batch_fn=launch_batch))

    def download_batch(api, requests):
        chunks = api.cuMemcpyDtoHBatch(
            [(state["dptr"], request.batch_arg) for request in requests])
        for request, chunk in zip(requests, chunks):
            request.result = chunk

    for index in range(d2h_chunks):
        nbytes = min(d2h_per_chunk, real_d2h - index * d2h_per_chunk)
        if nbytes <= 0:
            break

        def download(api, nbytes=nbytes):
            return api.cuMemcpyDtoH(state["dptr"], nbytes)

        submitted.append(
            client.submit(f"{workload.name}:d2h[{index}]", download,
                          memo_key=("d2h", int(nbytes)),
                          batch_key=("d2h", id(state)),
                          batch_arg=int(nbytes), batch_fn=download_batch))

    def cleanup(api):
        api.cuMemFree(state["dptr"])

    submitted.append(client.submit(f"{workload.name}:cleanup", cleanup))

    previous_recover = client.on_recover

    def recover(api, nbytes: int = buffer_bytes):
        # Session re-established after a fault: the old device buffer
        # and module died with the enclave context (cleansed), so the
        # remaining requests' closures need fresh handles in ``state``.
        if previous_recover is not None:
            previous_recover(api)
        state["dptr"] = api.cuMemAlloc(nbytes)
        state["module"] = api.cuModuleLoad(["builtin.memset32"])

    client.on_recover = recover
    return submitted
