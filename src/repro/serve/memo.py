"""Request-timing memoization for the serving fast path.

The serving engine executes each tenant request over the real sealed
protocol and measures the simulated time it charges.  For serving
workloads the stream is highly repetitive — the same (operation, size)
pair recurs across chunks, launch groups, and tenants that share one
session configuration — and the measured split is a pure function of
that shape: analytic charges depend on operation and byte count, device
charges on the driver-operation sequence, and the only order-dependent
category (``gpu_ctx_switch``) is excluded from serve measurements by
design (the virtual schedule charges switches itself).

:class:`RequestTimingMemo` caches the measured ``(host_seconds,
gpu_seconds)`` split per cache key so replayed identical requests charge
their cached virtual time instead of re-executing the full
seal -> PCIe -> MMU/DMA -> open pipeline at production time.  The
functional execution is *deferred, never skipped*: the engine batches
deferred requests through the sealed batch protocol under a suppressed
clock, so end state and results stay identical to the slow path.

Cache key and invalidation rules:

* The key is the request's ``memo_key`` — ``(op, size, ...)`` attached
  by the workload decomposition — plus its ``extra_host_seconds``
  (modeled host time is part of the measured split).
* The memo is configured with a *session-config token* fingerprinting
  everything that parameterizes timing: the AEAD suite, data inflation,
  channel queue depth, the crypto derate in effect, and the full cost
  model.  A token change auto-invalidates every entry.
* :meth:`RequestTimingMemo.invalidate` is the explicit hook for any
  other session-state change a caller knows about.
* Only successful runs are memoized; failures re-execute every time.
"""

from __future__ import annotations

from dataclasses import fields, is_dataclass
from typing import Dict, Hashable, Optional, Tuple


def costs_fingerprint(costs) -> Tuple:
    """A hashable fingerprint of every scalar cost-model parameter."""
    if is_dataclass(costs):
        items = [(f.name, getattr(costs, f.name)) for f in fields(costs)]
    else:  # pragma: no cover - CostModel is a dataclass today
        items = sorted(vars(costs).items())
    return tuple((name, value) for name, value in items
                 if isinstance(value, (int, float, str, bool, bytes)))


class RequestTimingMemo:
    """Cache of measured per-request virtual-time splits.

    Entries map a cache key to the ``(host_seconds, gpu_seconds)`` the
    slow path measured for that request shape.  The memo is *timing
    only* — functional execution is the caller's concern.
    """

    def __init__(self) -> None:
        self._entries: Dict[Hashable, Tuple[float, float]] = {}
        self._token: Optional[Hashable] = None
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def configure(self, token: Hashable) -> None:
        """Bind the memo to a session/cost configuration.

        Any change of token — different suite, inflation, queue depth,
        crypto derate, or any cost-model parameter — invalidates every
        cached timing, because each of those changes what an identical
        request would charge.
        """
        if self._token is not None and token != self._token:
            self.invalidate("session/cost configuration changed")
        self._token = token

    def invalidate(self, reason: str = "") -> None:
        """Explicit invalidation hook for session-state changes."""
        if self._entries:
            self._entries.clear()
        self.invalidations += 1

    def get(self, key: Hashable) -> Optional[Tuple[float, float]]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def put(self, key: Hashable, host_seconds: float,
            gpu_seconds: float) -> None:
        self._entries[key] = (host_seconds, gpu_seconds)

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> Dict[str, int]:
        return {"entries": len(self._entries), "hits": self.hits,
                "misses": self.misses,
                "invalidations": self.invalidations}
