"""Bounded per-tenant request queues with explicit backpressure.

Each tenant submits :class:`ServeRequest` callables into its own
bounded queue.  A full queue rejects the submission with
:class:`~repro.errors.BackpressureError` — the serving layer never
buffers unboundedly, mirroring the bounded sealed-message queues in
``repro.core.channel`` one level down.  The two levels compose: the
serve queue bounds *accepted but unexecuted* requests, the channel
queue bounds *in-flight sealed messages*, and a channel
``QueueFullError`` surfacing mid-request is translated back into
backpressure by the engine.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Optional

from repro.errors import BackpressureError
from repro.obs import metrics as obs_metrics

# Request outcomes, settled by the engine run.
PENDING = "pending"
SERVED = "served"
TIMEOUT = "timeout"
DENIED = "denied"          # quota (AdmissionError) during execution
BACKPRESSURE = "backpressure"  # channel queue overflow during execution
FAILED = "failed"          # structured error reply from the GPU enclave
SHED = "shed"              # dropped by the tenant's open circuit breaker
MIGRATED = "migrated"      # handed to another machine by a fleet drain


@dataclass
class ServeRequest:
    """One unit of tenant work: a callable over the tenant's API handle.

    ``fn`` receives the tenant's (quota-guarded) :class:`HixApi` proxy
    and may issue any number of sealed driver calls; the engine measures
    the simulated time they charge and schedules it on the virtual
    timeline.  ``extra_host_seconds`` adds modeled host time not
    captured by the calls themselves (e.g. launch overhead for launches
    elided by chunk capping — the serving analogue of the harness's
    launch-count correction).

    The optional fast-path metadata is what lets the engine memoize and
    batch the request (see :mod:`repro.serve.memo`): ``memo_key``
    identifies the request's *timing shape* (op + size + config-relevant
    parameters) — requests without one are never memoized; ``batch_key``
    marks runs of consecutive requests whose deferred functional
    execution may be coalesced through the sealed batch protocol, via
    ``batch_fn(api, requests)`` with ``batch_arg`` carrying each
    request's per-item payload.
    """

    label: str
    fn: Callable[[Any], Any]
    timeout: Optional[float] = None
    extra_host_seconds: float = 0.0
    memo_key: Optional[Any] = None
    batch_key: Optional[Any] = None
    batch_arg: Any = None
    batch_fn: Optional[Callable[[Any, Any], None]] = None
    seq: int = -1
    outcome: str = PENDING
    result: Any = None
    error: Optional[str] = None
    host_seconds: float = 0.0
    gpu_seconds: float = 0.0
    #: Structured failure cause (see :mod:`repro.serve.resilience`):
    #: ``timeout`` / ``queue_full`` / ``crypto`` / ``device_lost`` /
    #: ``quota`` / ``rejected`` / ``driver`` / ``circuit_open``.
    error_kind: Optional[str] = None
    #: For retryable rejections (``queue_full``, ``circuit_open``): the
    #: engine's hint, in virtual seconds, for when a resubmission is
    #: likely to succeed — derived from the observed queue drain rate.
    retry_after: Optional[float] = None
    #: How many times the request actually executed (0 if it only ever
    #: charged a memoized split; failures and retries each count one).
    attempts: int = 0
    #: Session epoch the functional execution ran under; bumped on every
    #: session re-establishment, so callers can tell whether two
    #: requests observed the same device state.
    session_epoch: int = 0
    #: Internal: set when a failed execution was re-queued for retry so
    #: stale visit settlements cannot overwrite the retry's outcome.
    retrying: bool = False


@dataclass
class QueueCounters:
    accepted: int = 0
    rejected: int = 0


class RequestQueue:
    """FIFO of pending requests for one tenant, bounded by quota."""

    def __init__(self, depth: int) -> None:
        if depth < 1:
            raise ValueError(f"queue depth must be >= 1, got {depth!r}")
        self.depth = depth
        self.counters = QueueCounters()
        self._entries: Deque[ServeRequest] = deque()
        self._seq = 0

    def submit(self, request: ServeRequest) -> ServeRequest:
        """Enqueue, or raise :class:`BackpressureError` if full."""
        registry = obs_metrics.registry()
        if len(self._entries) >= self.depth:
            self.counters.rejected += 1
            registry.counter("serve.queue_rejected").inc()
            raise BackpressureError(
                f"request queue full ({self.depth} pending); "
                f"rejected {request.label!r}")
        request.seq = self._seq
        self._seq += 1
        self.counters.accepted += 1
        registry.counter("serve.queue_accepted").inc()
        self._entries.append(request)
        return request

    def pop(self) -> ServeRequest:
        return self._entries.popleft()

    def peek(self) -> Optional[ServeRequest]:
        return self._entries[0] if self._entries else None

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __iter__(self):
        return iter(self._entries)
