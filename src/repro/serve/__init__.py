"""Multi-tenant GPU-enclave serving layer (repro.serve).

Turns the single GPU enclave of the core reproduction into a
multi-tenant server driven through the existing sealed protocol:

* :mod:`~repro.serve.session` — admission control and per-tenant quotas
  (contexts, device-memory budget, in-flight cap, queue depth, weight);
* :mod:`~repro.serve.queues` — bounded request queues with explicit
  backpressure and timeout semantics;
* :mod:`~repro.serve.scheduler` — pluggable GPU-engine arbitration
  (FIFO, round-robin, deficit-weighted fair);
* :mod:`~repro.serve.timeline` — the virtual-time multiplexing core,
  FIFO-equivalent to the analytic ``multiuser.simulate_concurrent``;
* :mod:`~repro.serve.engine` — the driver loop that executes real
  sealed requests for N tenants and schedules them on one device;
* :mod:`~repro.serve.jobs` — workloads decomposed into request streams.
"""

from repro.serve.engine import (
    GPU_ENGINE_CATEGORIES,
    ServeEngine,
    ServeReport,
    TenantClient,
    TenantReport,
)
from repro.serve.queues import RequestQueue, ServeRequest
from repro.serve.resilience import (
    BreakerConfig,
    CircuitBreaker,
    RetryPolicy,
    classify_failure,
)
from repro.serve.scheduler import (
    SCHEDULER_NAMES,
    DeficitFairScheduler,
    FifoScheduler,
    RoundRobinScheduler,
    Scheduler,
    make_scheduler,
)
from repro.serve.session import SessionTable, TenantQuota, TenantRecord
from repro.serve.timeline import (
    MultiplexResult,
    TenantLane,
    WorkUnit,
    multiplex,
    schedule_segments,
)

__all__ = [
    "GPU_ENGINE_CATEGORIES",
    "ServeEngine",
    "ServeReport",
    "TenantClient",
    "TenantReport",
    "RequestQueue",
    "ServeRequest",
    "BreakerConfig",
    "CircuitBreaker",
    "RetryPolicy",
    "classify_failure",
    "SCHEDULER_NAMES",
    "DeficitFairScheduler",
    "FifoScheduler",
    "RoundRobinScheduler",
    "Scheduler",
    "make_scheduler",
    "SessionTable",
    "TenantQuota",
    "TenantRecord",
    "MultiplexResult",
    "TenantLane",
    "WorkUnit",
    "multiplex",
    "schedule_segments",
]
