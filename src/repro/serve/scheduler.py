"""Pluggable GPU-engine schedulers for the serving layer.

A scheduler arbitrates the one exclusive resource in the system — the
GPU execution engine — among the ready queue heads of the admitted
tenants.  It sees only :class:`~repro.sim.engine.Visit` objects and
the current engine owner, so the same scheduler drives both the pure
virtual-time cross-checks (:func:`~repro.serve.timeline.schedule_segments`)
and the real sealed-request serving engine.

Three policies ship with the reproduction:

* ``fifo`` — global arrival order; identical to the shared kernel's
  native arbitration, and therefore exactly equal to the paper's
  analytic multi-user model
  (:func:`repro.core.multiuser.simulate_concurrent`) on all inputs,
  simultaneous-event ties included.
* ``round-robin`` — rotate ownership across tenants regardless of how
  much engine time each visit consumes.
* ``fair`` — deficit-weighted round robin (DRR): tenants accumulate
  engine-time credit each round in proportion to their quota weight and
  a visit is served once its tenant's credit covers it.  Because the
  virtual timeline charges ``costs.gpu_context_switch`` on every owner
  change, DRR's extra rotation shows up honestly in the makespan.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Sequence

from repro.sim.engine import Visit

# Rotation modulus for round-robin distance; tenant ids are small table
# indices, so any bound far above the tenant count works.
_WRAP = 1 << 30


class Scheduler(ABC):
    """Arbitrates ready GPU visits; stateful across ``select`` calls."""

    name = "scheduler"

    @abstractmethod
    def select(self, candidates: Sequence[Visit], resident: Optional[int],
               now: float) -> Visit:
        """Pick one of *candidates* (never empty) to own the engine next.

        *resident* is the tenant currently resident on the engine (None
        before first occupancy); choosing a different tenant costs a
        context switch.  *now* is the virtual dispatch time.
        """

    def reset(self) -> None:
        """Forget rotation/credit state (called between runs)."""


class FifoScheduler(Scheduler):
    """Global arrival order — the analytic model's implicit policy."""

    name = "fifo"

    def select(self, candidates: Sequence[Visit], resident: Optional[int],
               now: float) -> Visit:
        return min(candidates, key=lambda v: (v.ready, v.seq))


def _rotation_key(tenant: int, last: Optional[int]) -> int:
    """Distance from the last-served tenant, so ownership rotates."""
    if last is None:
        return tenant
    return (tenant - last - 1) % _WRAP


class RoundRobinScheduler(Scheduler):
    """Rotate engine ownership across tenants, one visit per turn."""

    name = "round-robin"

    def __init__(self) -> None:
        self._last: Optional[int] = None

    def select(self, candidates: Sequence[Visit], resident: Optional[int],
               now: float) -> Visit:
        visit = min(candidates,
                    key=lambda v: (_rotation_key(v.tenant, self._last), v.seq))
        self._last = visit.tenant
        return visit

    def reset(self) -> None:
        self._last = None


class DeficitFairScheduler(Scheduler):
    """Deficit-weighted round robin over GPU-engine seconds.

    Classic DRR adapted to a continuous resource: each round, every
    backlogged tenant's credit grows by ``quantum * weight``; the first
    tenant in rotation order whose credit covers its head visit is
    served and pays the visit's engine seconds from its credit.  Credit
    of tenants with nothing pending is dropped (a tenant cannot bank
    idle time), which is what makes the policy fair rather than merely
    proportional.

    On single-visit-per-tenant inputs every work-conserving policy —
    this one included — reproduces ``simulate_concurrent`` exactly
    (busy periods of a work-conserving server are order-invariant); on
    workload-shaped multi-visit inputs DRR's reordering perturbs the
    makespan by well under a percent, which is the tolerance the
    cross-check suite pins down.
    """

    name = "fair"

    def __init__(self, quantum: float) -> None:
        if quantum <= 0.0:
            raise ValueError(f"DRR quantum must be positive, got {quantum!r}")
        self.quantum = quantum
        self._deficit: Dict[int, float] = {}
        self._last: Optional[int] = None

    def select(self, candidates: Sequence[Visit], resident: Optional[int],
               now: float) -> Visit:
        order: List[Visit] = sorted(
            candidates,
            key=lambda v: (_rotation_key(v.tenant, self._last), v.seq))
        backlogged = {v.tenant for v in candidates}
        self._deficit = {tenant: credit for tenant, credit
                         in self._deficit.items() if tenant in backlogged}
        while True:
            for visit in order:
                credit = (self._deficit.get(visit.tenant, 0.0)
                          + self.quantum * visit.weight)
                if credit + 1e-12 >= visit.gpu_seconds:
                    self._deficit[visit.tenant] = max(
                        credit - visit.gpu_seconds, 0.0)
                    self._last = visit.tenant
                    return visit
                self._deficit[visit.tenant] = credit

    def reset(self) -> None:
        self._deficit.clear()
        self._last = None


def make_scheduler(name: str, costs=None) -> Scheduler:
    """Build a scheduler by policy name (``fifo``/``round-robin``/``fair``).

    The fair scheduler's quantum comes from ``costs.serve_fair_quantum``
    when a cost model is given, so CLI/evalkit runs stay consistent with
    the machine's calibration.
    """
    key = name.strip().lower().replace("_", "-")
    if key == "fifo":
        return FifoScheduler()
    if key in ("rr", "round-robin", "roundrobin"):
        return RoundRobinScheduler()
    if key in ("fair", "drr", "deficit"):
        if costs is not None:
            return DeficitFairScheduler(costs.serve_fair_quantum)
        from repro.sim.costs import CostModel
        return DeficitFairScheduler(CostModel().serve_fair_quantum)
    raise ValueError(f"unknown scheduler {name!r} "
                     "(expected fifo, round-robin, or fair)")


SCHEDULER_NAMES = ("fifo", "round-robin", "fair")
