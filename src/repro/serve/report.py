"""Serving reports and the one shared per-tenant rollup.

Before this module existed the per-tenant outcome rollup lived twice —
once in :meth:`ServeEngine.run`'s report assembly and once in the
metric-publication loop — and the fleet tier would have added a third
copy for its cross-machine merge.  :func:`build_tenant_report` is now
the single place a :class:`TenantClient`'s request ledger becomes a
:class:`TenantReport` row, :data:`OUTCOME_FIELDS` is the single list of
outcome counters (metrics publication, fleet totals, and renderers all
iterate it), and :func:`merge_reports` is the fleet-level merge that
:mod:`repro.fleet` and the evalkit sweeps share.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.serve.queues import (
    BACKPRESSURE,
    DENIED,
    FAILED,
    MIGRATED,
    SERVED,
    SHED,
    TIMEOUT,
)
from repro.sim.trace import TraceEvent, render_lanes


@dataclass
class TenantReport:
    """Per-tenant serving metrics, all in simulated/virtual seconds."""

    name: str
    submitted: int
    rejected_submits: int
    served: int
    timed_out: int
    denied: int
    backpressured: int
    failed: int
    finish_time: float
    gpu_busy: float
    host_busy: float
    waits: float
    stall_seconds: float
    peak_memory: int
    quota_denials: int
    shed: int = 0
    retries: int = 0
    migrated: int = 0


#: Outcome counters of a :class:`TenantReport`, paired with the metric
#: name they publish under.  Engine metric publication, fleet totals,
#: and report merges all iterate this one list — add a counter here and
#: every consumer picks it up.
OUTCOME_FIELDS: Tuple[Tuple[str, str], ...] = (
    ("serve.requests_served", "served"),
    ("serve.requests_timed_out", "timed_out"),
    ("serve.requests_denied", "denied"),
    ("serve.requests_backpressured", "backpressured"),
    ("serve.requests_failed", "failed"),
    ("serve.requests_shed", "shed"),
    ("serve.retry.total", "retries"),
    ("serve.requests_migrated", "migrated"),
)


def build_tenant_report(client, name: str, timeline,
                        stall_seconds: float) -> TenantReport:
    """Roll one client's request ledger + lane timeline into a report row.

    *client* is a :class:`repro.serve.engine.TenantClient`; *timeline*
    the matching :class:`repro.sim.engine.LaneTimeline`.  This is the
    one place outcome strings become report counters — the engine's
    report assembly and the fleet tier's per-machine merge both call
    it, so the two can never drift.
    """
    counts = client.outcome_counts()
    return TenantReport(
        name=name,
        submitted=client.queue.counters.accepted,
        rejected_submits=client.queue.counters.rejected,
        served=counts.get(SERVED, 0),
        timed_out=counts.get(TIMEOUT, 0),
        denied=counts.get(DENIED, 0),
        backpressured=counts.get(BACKPRESSURE, 0),
        failed=counts.get(FAILED, 0),
        finish_time=timeline.finish_time,
        gpu_busy=timeline.gpu_busy,
        host_busy=timeline.host_busy,
        waits=timeline.waits,
        stall_seconds=stall_seconds,
        peak_memory=client.record.peak_memory,
        quota_denials=client.record.quota_denials,
        shed=counts.get(SHED, 0),
        retries=sum(max(request.attempts - 1, 0)
                    for request in client.requests),
        # Drained requests leave the source ledger when handed off (the
        # target re-owns them), so the source counts them separately.
        migrated=counts.get(MIGRATED, 0)
        + getattr(client, "migrated_away", 0),
    )


@dataclass
class ServeReport:
    """Outcome of one :meth:`ServeEngine.run`."""

    scheduler: str
    makespan: float
    context_switches: int
    gpu_utilization: float
    tenants: List[TenantReport]
    lanes: Dict[str, List[TraceEvent]] = field(default_factory=dict)

    def tenant(self, name: str) -> TenantReport:
        for report in self.tenants:
            if report.name == name:
                return report
        raise KeyError(name)

    def render(self, width: int = 60) -> str:
        lines = [
            f"serve: {len(self.tenants)} tenant(s), "
            f"scheduler={self.scheduler}, "
            f"makespan={self.makespan * 1e3:.3f} ms, "
            f"ctx_switches={self.context_switches}, "
            f"gpu_util={self.gpu_utilization:.1%}",
        ]
        header = (f"{'tenant':>12} {'srv':>4} {'t/o':>4} {'den':>4} "
                  f"{'bp':>4} {'fail':>4} {'finish_ms':>10} "
                  f"{'gpu_ms':>8} {'wait_ms':>8}")
        lines.append(header)
        for t in self.tenants:
            lines.append(
                f"{t.name:>12} {t.served:>4} {t.timed_out:>4} "
                f"{t.denied:>4} {t.backpressured:>4} {t.failed:>4} "
                f"{t.finish_time * 1e3:>10.3f} {t.gpu_busy * 1e3:>8.3f} "
                f"{t.waits * 1e3:>8.3f}")
        if self.lanes:
            lines.append(render_lanes(self.lanes, width=width))
        return "\n".join(lines)


def report_totals(report: ServeReport) -> Dict[str, int]:
    """Outcome totals across a report's tenants, keyed by metric name."""
    return {metric: sum(getattr(t, attr) for t in report.tenants)
            for metric, attr in OUTCOME_FIELDS}


def merge_reports(reports: Sequence[ServeReport],
                  labels: Optional[Sequence[str]] = None,
                  scheduler: str = "",
                  rename: Optional[Callable[[str, str], str]] = None,
                  ) -> ServeReport:
    """Merge per-machine serve reports into one fleet-level report.

    The merged makespan is the max over machines (they ran on one
    shared kernel, so their virtual timelines are directly comparable),
    context switches sum, and GPU utilization is the busy-sum over the
    merged makespan — i.e. utilization *per engine* averaged across the
    fleet.  Tenant rows and lane tracks keep their per-machine identity
    via *rename* (default ``"{label}/{name}"``); per-machine reports
    themselves are left untouched, unprefixed — that is what keeps a
    1-machine fleet bit-identical to a bare engine run.
    """
    if labels is None:
        labels = [f"m{index}" for index in range(len(reports))]
    if rename is None:
        def rename(label: str, name: str) -> str:
            return f"{label}/{name}"
    makespan = max((r.makespan for r in reports), default=0.0)
    gpu_busy = sum(t.gpu_busy for r in reports for t in r.tenants)
    engines = max(len(reports), 1)
    tenants: List[TenantReport] = []
    lanes: Dict[str, List[TraceEvent]] = {}
    for label, report in zip(labels, reports):
        for row in report.tenants:
            merged = TenantReport(**{**row.__dict__,
                                     "name": rename(label, row.name)})
            tenants.append(merged)
        for name, events in report.lanes.items():
            lanes[rename(label, name)] = events
    return ServeReport(
        scheduler=scheduler or (reports[0].scheduler if reports else ""),
        makespan=makespan,
        context_switches=sum(r.context_switches for r in reports),
        gpu_utilization=(gpu_busy / (makespan * engines)
                         if makespan > 0.0 else 0.0),
        tenants=tenants,
        lanes=lanes,
    )
