"""Session table: admission control and per-tenant quotas.

The GPU enclave itself (``repro.core.gpu_enclave``) enforces isolation —
sealed channels, per-session VRAM ownership, cleansing on teardown.
What it does not do is *police resource consumption*: a single tenant
can open contexts and allocate device memory until the device runs dry.
The serving layer's session table adds that policy level, in front of
the enclave, the way a multi-tenant inference service fronts a device
driver: admission is denied before any sealed request is issued.

Quota violations raise :class:`~repro.errors.AdmissionError`, which is a
*serving-layer* error: nothing was sent over the channel, no enclave
state changed, and the tenant can retry after releasing resources.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import AdmissionError
from repro.obs.slo import SloObjective

MB = 1 << 20


@dataclass(frozen=True)
class TenantQuota:
    """Resource limits applied to one tenant across all its contexts.

    ``device_memory_bytes`` is a *real* (post-inflation) byte budget,
    matching what ``cuMemAlloc`` actually reserves on the simulated
    device.  ``max_inflight`` bounds how many sealed GPU requests the
    tenant may have queued or in service at once — the pipeline depth
    beyond which its submission loop stalls (explicit backpressure).
    ``request_timeout`` is in simulated seconds on the virtual serving
    timeline; ``None`` disables expiry.
    """

    max_contexts: int = 1
    device_memory_bytes: int = 64 * MB
    max_inflight: int = 1
    max_queue_depth: int = 64
    weight: float = 1.0
    request_timeout: Optional[float] = None
    #: Service-level objective for this tenant; evaluated by the SLO
    #: engine when the serve run collects telemetry (``None`` = none
    #: declared — the tenant gets no alert rules).
    slo: Optional[SloObjective] = None

    def __post_init__(self) -> None:
        if self.max_contexts < 1:
            raise ValueError("max_contexts must be >= 1")
        if self.device_memory_bytes < 0:
            raise ValueError("device_memory_bytes must be non-negative")
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if self.weight <= 0.0:
            raise ValueError("weight must be positive")
        if self.request_timeout is not None and self.request_timeout <= 0.0:
            raise ValueError("request_timeout must be positive (or None)")


@dataclass
class TenantRecord:
    """Live accounting for one admitted tenant."""

    tenant_id: int
    name: str
    quota: TenantQuota
    contexts_open: int = 0
    memory_in_use: int = 0
    peak_memory: int = 0
    quota_denials: int = 0
    allocations: Dict[int, int] = field(default_factory=dict)


class SessionTable:
    """Admission control in front of the GPU enclave.

    One table per serving engine.  ``admit`` registers a tenant (or
    returns the existing record, so several client handles can share one
    tenant's quota); ``open_context`` / ``charge`` / ``release`` police
    the per-tenant caps and raise :class:`AdmissionError` on violation
    *before* the corresponding sealed request is built.
    """

    def __init__(self, max_tenants: int = 8,
                 default_quota: Optional[TenantQuota] = None) -> None:
        if max_tenants < 1:
            raise ValueError("max_tenants must be >= 1")
        self.max_tenants = max_tenants
        self.default_quota = default_quota or TenantQuota()
        self._by_name: Dict[str, TenantRecord] = {}

    # -- admission ----------------------------------------------------------

    def admit(self, name: str,
              quota: Optional[TenantQuota] = None) -> TenantRecord:
        """Register *name*, or return its record if already admitted.

        Re-admitting with an explicit *quota* different from the
        recorded one is a configuration error and is rejected.
        """
        record = self._by_name.get(name)
        if record is not None:
            if quota is not None and quota != record.quota:
                raise AdmissionError(
                    f"tenant {name!r} already admitted with a different quota")
            return record
        if len(self._by_name) >= self.max_tenants:
            raise AdmissionError(
                f"session table full ({self.max_tenants} tenants); "
                f"cannot admit {name!r}")
        record = TenantRecord(tenant_id=len(self._by_name), name=name,
                              quota=quota or self.default_quota)
        self._by_name[name] = record
        return record

    def evict(self, name: str) -> None:
        """Drop a tenant's record (its enclave sessions must be closed)."""
        record = self._by_name.pop(name, None)
        if record is not None and record.contexts_open:
            self._by_name[name] = record
            raise AdmissionError(
                f"tenant {name!r} still has {record.contexts_open} open "
                "context(s); close them before eviction")

    # -- per-tenant resource policing --------------------------------------

    def open_context(self, record: TenantRecord) -> None:
        if record.contexts_open >= record.quota.max_contexts:
            record.quota_denials += 1
            raise AdmissionError(
                f"tenant {record.name!r} at its context cap "
                f"({record.quota.max_contexts})")
        record.contexts_open += 1

    def close_context(self, record: TenantRecord) -> None:
        if record.contexts_open <= 0:
            raise AdmissionError(
                f"tenant {record.name!r} has no open context to close")
        record.contexts_open -= 1

    def charge_memory(self, record: TenantRecord, handle: int,
                      nbytes: int) -> None:
        """Account a pending ``cuMemAlloc``; deny if over budget."""
        if record.memory_in_use + nbytes > record.quota.device_memory_bytes:
            record.quota_denials += 1
            raise AdmissionError(
                f"tenant {record.name!r} over device-memory budget: "
                f"{record.memory_in_use + nbytes} > "
                f"{record.quota.device_memory_bytes} bytes")
        record.memory_in_use += nbytes
        record.peak_memory = max(record.peak_memory, record.memory_in_use)
        record.allocations[handle] = nbytes

    def release_memory(self, record: TenantRecord, handle: int) -> None:
        nbytes = record.allocations.pop(handle, 0)
        record.memory_in_use = max(record.memory_in_use - nbytes, 0)

    # -- introspection ------------------------------------------------------

    def get(self, name: str) -> Optional[TenantRecord]:
        return self._by_name.get(name)

    @property
    def tenants(self) -> List[TenantRecord]:
        return sorted(self._by_name.values(), key=lambda r: r.tenant_id)

    def __len__(self) -> int:
        return len(self._by_name)
