"""The serving engine: N user enclaves multiplexed through one GPU enclave.

This is the tentpole of the serving layer.  Each admitted tenant gets a
real attested session against the shared :class:`GpuEnclaveService` —
its own user enclave, 3-party key exchange, sealed channel, and bounded
message queues — and submits :class:`ServeRequest` callables into its
bounded request queue.  The engine then runs every tenant as a real
:class:`~repro.sim.engine.Process` on the shared discrete-event kernel:

* **Production happens in virtual time.**  A tenant process pulls its
  next request when the kernel schedules it to, so admission checks,
  sealed-request execution, and backpressure stalls of different
  tenants interleave on the shared machine in exactly the order a real
  serving loop would admit them.  Real bytes move, real AEAD
  seals/opens run, the GPU enclave dispatches real driver operations;
  the simulated time each request charges is measured by a fresh
  per-request recording listener (so the measurement is independent of
  the clock's absolute accumulator state — see :class:`_ChargeRecorder`)
  and split into GPU-engine-exclusive seconds (compute, dispatch,
  in-GPU crypto) vs overlappable host seconds using
  :meth:`TimeBreakdown.split`.

* **The engine is the kernel's exclusive Resource.**  Host work of
  different tenants overlaps, GPU visits serialize under the
  configured scheduler, request timeouts expire lazily at dispatch
  time, and ``costs.gpu_context_switch`` is charged on every owner
  change.  The device's own ``gpu_ctx_switch`` charges from the serial
  production order are excluded from the measurements so switches are
  charged exactly once, by the schedule that actually decides them.

Timeout semantics are a modeling choice worth stating: a request whose
GPU visit expires on the virtual timeline already executed functionally
at production time (its allocations, transfers, and kernel effects
persist), but its engine seconds are *not* charged to the makespan —
the served/timed-out accounting reflects what a real serving loop would
have admitted to the engine, while functional state reflects the sealed
protocol's actual execution.

Under concurrent service the in-GPU crypto kernels run on per-chunk
batches too small to fill the SMs, so their measured engine seconds are
derated by ``costs.gpu_aead_multiuser_efficiency`` whenever more than
one tenant is admitted (Section 5.4) — the same assumption the analytic
Figures 8/9 model bakes into its crypto segments, which keeps the two
paths cross-checkable.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Union,
)

from repro.errors import (
    AdmissionError,
    CryptoError,
    DriverError,
    GpuAlreadyOwned,
    QueueFullError,
    RequestRejected,
)
from repro.obs import metrics as obs_metrics
from repro.obs.audit import audit_log
from repro.obs.slo import (
    SloObjective,
    bad_series,
    good_series,
    latency_series,
    shed_series,
    timeout_series,
)
from repro.obs.timeseries import TimeSeriesSampler
from repro.obs.tracer import span as _span
from repro.serve.queues import (
    BACKPRESSURE,
    DENIED,
    FAILED,
    MIGRATED,
    PENDING,
    SERVED,
    SHED,
    TIMEOUT,
    RequestQueue,
    ServeRequest,
)
from repro.serve.memo import RequestTimingMemo, costs_fingerprint
from repro.serve.report import (
    ServeReport,
    TenantReport,
    build_tenant_report,
    report_totals,
)
from repro.serve.resilience import (
    KIND_CIRCUIT_OPEN,
    KIND_CRYPTO,
    KIND_DEVICE_LOST,
    KIND_QUEUE_FULL,
    KIND_QUOTA,
    KIND_REJECTED,
    KIND_TIMEOUT,
    BREAKER_KINDS,
    RECOVERY_KINDS,
    BreakerConfig,
    CircuitBreaker,
    RetryPolicy,
    classify_failure,
    tenant_rng,
)
from repro.serve.scheduler import FifoScheduler, Scheduler, make_scheduler
from repro.serve.session import SessionTable, TenantQuota, TenantRecord
from repro.sim.engine import EventClock, LaneRun, TenantLane, WorkUnit
from repro.sim.clock import TimeBreakdown
from repro.sim.trace import TraceEvent

#: Clock categories that occupy the GPU execution engine exclusively.
#: Everything else (ipc, copy pipelines, launches, mmio, session setup,
#: serve dispatch) is host-side work that overlaps across tenants.
GPU_ENGINE_CATEGORIES = frozenset({"gpu_compute", "gpu_dispatch",
                                   "crypto_gpu"})

#: Request-failure kinds that are security evidence: the sealed
#: protocol or the device detected tampering/loss, so the failure is
#: recorded on the audit log (the chaos detection verdict matches
#: injected faults against these records).
SECURITY_FAILURE_KINDS = frozenset({KIND_CRYPTO, KIND_DEVICE_LOST,
                                    KIND_REJECTED, "driver"})

_UNSET = object()


class _ChargeRecorder:
    """Accumulate one measured region's charges from a zero baseline.

    Measuring by subtracting clock snapshots makes the result depend on
    the *absolute* accumulator values (``(X + d) - X`` is not always
    ``d`` in floats), so identical requests measure ulp-differently at
    different clock positions.  A fresh listener accumulates each
    region's charges from 0.0, which makes the measured split a pure
    function of the charge sequence — exactly what the timing memo
    replays, so fast-path and slow-path reports agree bit for bit.

    The production order's incidental ``gpu_ctx_switch`` charges are
    excluded at accumulation time rather than subtracted afterwards:
    they land at interleaving-dependent points in the charge sequence,
    and float addition is not associative, so ``(a + ctx + b) - ctx``
    would leak the interleaving into the last ulp of the host split.
    """

    __slots__ = ("total", "by_category")

    #: The one category whose charges depend on cross-tenant production
    #: order.  The virtual schedule charges switches itself, from the
    #: owner changes it actually decides, so measurements drop them.
    EXCLUDED = frozenset({"gpu_ctx_switch"})

    def __init__(self) -> None:
        self.total = 0.0
        self.by_category: Dict[str, float] = {}

    def __call__(self, start: float, seconds: float, category: str) -> None:
        if category in self.EXCLUDED:
            return
        self.total += seconds
        self.by_category[category] = (
            self.by_category.get(category, 0.0) + seconds)

    def breakdown(self) -> TimeBreakdown:
        return TimeBreakdown(self.total, self.by_category)


class _GuardedApi:
    """Quota-enforcing facade over a tenant's :class:`HixApi`.

    Device-memory allocations are charged against the tenant's budget in
    the session table *before* the sealed request is built — a denial
    never reaches the GPU enclave, it is pure serving-layer policy.
    """

    def __init__(self, api, table: SessionTable, record: TenantRecord,
                 tokens: Iterator[int]) -> None:
        self._api = api
        self._table = table
        self._record = record
        self._tokens = tokens
        self._handles: Dict[int, int] = {}

    def cuMemAlloc(self, nbytes: int):
        token = next(self._tokens)
        self._table.charge_memory(self._record, token, nbytes)
        try:
            dptr = self._api.cuMemAlloc(nbytes)
        except DriverError:
            self._table.release_memory(self._record, token)
            raise
        self._handles[dptr.addr] = token
        return dptr

    def cuMemFree(self, dptr) -> None:
        self._api.cuMemFree(dptr)
        token = self._handles.pop(dptr.addr, None)
        if token is not None:
            self._table.release_memory(self._record, token)

    def __getattr__(self, name: str):
        return getattr(self._api, name)


class TenantClient:
    """One tenant's handle on the serving engine.

    Holds the bounded request queue (submission side) and, once the
    engine runs, the tenant's real attested API session.  Several
    clients may share one tenant name — they then share the tenant's
    quota and each consumes one of its ``max_contexts``.
    """

    def __init__(self, name: str, record: TenantRecord) -> None:
        self.name = name
        self.record = record
        self.queue = RequestQueue(record.quota.max_queue_depth)
        self.requests: List[ServeRequest] = []
        self.api: Optional[_GuardedApi] = None
        self.admission_error: Optional[str] = None
        #: Bumped on every session re-establishment after a fault; each
        #: executed request is stamped with the epoch it ran under.
        self.session_epoch = 0
        #: Called with the (guarded) API after a session recovery so the
        #: workload can re-provision device state (allocations, modules)
        #: that died with the old enclave context.
        self.on_recover: Optional[Callable[[Any], None]] = None
        # Served-time accounting feeding the queue-drain retry-after hint.
        self.served_seconds = 0.0
        self.served_count = 0
        #: Cooperative drain (fleet migration): set by
        #: :meth:`request_drain`; the tenant's unit stream finishes its
        #: in-flight work, tears the session down, and hands unexecuted
        #: requests to ``on_drained``.
        self.drain_requested = False
        self.on_drained: Optional[
            Callable[[List[ServeRequest]], None]] = None
        #: Requests handed off to another machine by a cooperative drain.
        self.migrated_away = 0
        #: Set on migrated-in clients: run ``on_recover`` right after
        #: session setup to re-provision device state that stayed behind
        #: (cleansed) on the source machine.
        self.reprovision_on_start = False
        #: When the engine runs with ``capture_units=True``, every
        #: virtual-time unit this tenant charged (session setup, serves,
        #: backoffs, teardown) — the ledger a lite-session profile
        #: replays without any crypto state.
        self.captured_units: Optional[List[WorkUnit]] = None

    def request_drain(self) -> None:
        """Ask the tenant's stream to stop pulling new requests."""
        self.drain_requested = True

    def submit(self, label: str, fn: Callable[[Any], Any],
               timeout: Any = _UNSET,
               extra_host_seconds: float = 0.0,
               memo_key: Any = None, batch_key: Any = None,
               batch_arg: Any = None, batch_fn: Any = None) -> ServeRequest:
        """Queue one request; raises :class:`BackpressureError` if full.

        *timeout* defaults to the tenant quota's ``request_timeout``;
        pass ``None`` explicitly to exempt a single request.  The
        ``memo_key``/``batch_*`` metadata opts the request into the
        engine's timing-memo fast path (see :class:`ServeRequest`).
        """
        if timeout is _UNSET:
            timeout = self.record.quota.request_timeout
        request = ServeRequest(label=label, fn=fn, timeout=timeout,
                               extra_host_seconds=extra_host_seconds,
                               memo_key=memo_key, batch_key=batch_key,
                               batch_arg=batch_arg, batch_fn=batch_fn)
        self.queue.submit(request)
        self.requests.append(request)
        return request

    def outcome_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for request in self.requests:
            counts[request.outcome] = counts.get(request.outcome, 0) + 1
        return counts


class ServeEngine:
    """Multi-tenant serving loop over one GPU enclave."""

    def __init__(self, machine, service=None,
                 scheduler: Union[str, Scheduler] = "fair",
                 max_tenants: int = 8,
                 default_quota: Optional[TenantQuota] = None,
                 crypto_efficiency: Optional[float] = None,
                 channel_queue_depth: int = 4,
                 fast_path: bool = True,
                 retry_policy: Optional[RetryPolicy] = None,
                 breaker: Optional[BreakerConfig] = None,
                 seed: int = 0,
                 capture_units: bool = False,
                 telemetry: Optional[TimeSeriesSampler] = None) -> None:
        self._machine = machine
        self._service = (service if service is not None
                         else machine.boot_secure())
        if isinstance(scheduler, str):
            scheduler = make_scheduler(scheduler, machine.costs)
        self._scheduler = scheduler
        self.table = SessionTable(max_tenants=max_tenants,
                                  default_quota=default_quota)
        self._clients: List[TenantClient] = []
        self._alloc_tokens = itertools.count(1)
        self._crypto_efficiency = crypto_efficiency
        self._channel_queue_depth = channel_queue_depth
        self._fast_path = fast_path
        #: Resilience knobs (repro.serve.resilience); both default off,
        #: in which case failures are terminal exactly as before.
        self._retry_policy = retry_policy
        self._breaker_config = breaker
        self._seed = seed
        #: Tee every tenant's charged units into
        #: ``client.captured_units`` (lite-session profile capture).
        self.capture_units = capture_units
        #: Windowed time-series sampler (repro.obs.timeseries).  When
        #: set, the engine attaches it to the run's kernel and records
        #: per-request outcome marks and completion latencies at their
        #: virtual times.  Pure observation: a telemetry-enabled run is
        #: bit-identical in simulated time and reports to a disabled one
        #: (pinned by tests/property/test_prop_telemetry.py).
        self.telemetry = telemetry
        self._kernel: Optional[EventClock] = None
        # Run state between start() and finish() (fleet shared-kernel
        # runs hold several engines open across one kernel drain).
        self._lane_run: Optional[LaneRun] = None
        self._lane_names: List[str] = []
        self._lane_clients: List[Optional[TenantClient]] = []
        self._crypto_eff = 1.0
        #: Timing memo for the fast path; shared across tenants of one
        #: engine (they share the session configuration the key tokens).
        self.memo = RequestTimingMemo()

    def _memo_token(self, crypto_eff: float):
        """Everything that parameterizes what an identical request charges."""
        config = getattr(self._machine, "config", None)
        return (getattr(config, "backend", "hix"),
                getattr(config, "suite_name", None),
                getattr(config, "data_inflation", None),
                self._channel_queue_depth, crypto_eff,
                costs_fingerprint(self._machine.costs))

    @property
    def service(self):
        return self._service

    @property
    def machine(self):
        return self._machine

    @property
    def scheduler(self) -> Scheduler:
        return self._scheduler

    @scheduler.setter
    def scheduler(self, scheduler: Scheduler) -> None:
        """Swap the arbitration policy (chaos wraps it adversarially)."""
        self._scheduler = scheduler

    @property
    def clients(self) -> List[TenantClient]:
        return list(self._clients)

    def add_tenant(self, name: str,
                   quota: Optional[TenantQuota] = None) -> TenantClient:
        """Admit *name* (or attach another client to an admitted tenant)."""
        record = self.table.admit(name, quota)
        client = TenantClient(name, record)
        self._clients.append(client)
        return client

    # -- measurement -------------------------------------------------------

    def _resolve_crypto_efficiency(self) -> float:
        if self._crypto_efficiency is not None:
            return self._crypto_efficiency
        if len({c.name for c in self._clients}) > 1:
            return self._machine.backend.multiuser_efficiency(
                self._machine.costs)
        return 1.0

    def _split(self, elapsed: TimeBreakdown, crypto_eff: float):
        """Measured charge -> (host_seconds, gpu_engine_seconds).

        The production order's incidental ``gpu_ctx_switch`` charges are
        dropped entirely: the virtual schedule charges switches itself,
        from the owner changes it actually decides.
        """
        gpu, host = elapsed.split(GPU_ENGINE_CATEGORIES)
        host -= elapsed.by_category.get("gpu_ctx_switch", 0.0)
        if crypto_eff < 1.0:
            crypto = elapsed.by_category.get("crypto_gpu", 0.0)
            gpu += crypto * (1.0 / crypto_eff - 1.0)
        return max(host, 0.0), max(gpu, 0.0)

    # -- resilience --------------------------------------------------------

    def _queue_retry_after(self, client: TenantClient) -> float:
        """Retry-after hint for ``queue_full``: how long until the
        channel backlog likely drained.

        The drain rate is the tenant's observed mean service time per
        completed request; the backlog that must drain is bounded by the
        channel queue depth.  Before any request completed, the dispatch
        latency is the only calibrated per-request cost available.
        """
        if client.served_count:
            per_request = client.served_seconds / client.served_count
        else:
            per_request = self._machine.costs.serve_dispatch_latency
        return per_request * self._channel_queue_depth

    def _restore_service(self) -> None:
        """Bring back a dead GPU enclave service.

        A killed GPU enclave leaves GECS bound (termination protection,
        Section 4.2.3), so a re-boot attempt raises
        :class:`GpuAlreadyOwned` and the only path back is a cold boot
        — exactly the lifecycle the paper prescribes.
        """
        machine = self._machine
        try:
            self._service = machine.boot_secure()
        except GpuAlreadyOwned:
            machine.cold_boot()
            self._service = machine.boot_secure()
        obs_metrics.registry().counter("serve.retry.service_restores").inc()
        audit_log().record(
            "serve.service_restored", "machine",
            time=self._kernel.now if self._kernel is not None else 0.0,
            detail="GPU service re-established after device loss "
                   "(cold boot when GECS stayed bound)",
            backend=getattr(getattr(machine, "config", None),
                            "backend", "hix"))

    def _recover_session(self, client: TenantClient, guarded: "_GuardedApi",
                         crypto_eff: float) -> Iterator[WorkUnit]:
        """Re-establish *client*'s session after enclave/session loss.

        Runs the full trust path again — fresh user enclave, attestation
        of the (possibly re-booted) GPU enclave, 3-party key exchange —
        measured and charged to the tenant like any other work.  Device
        state from the old session is gone (the enclave context was
        destroyed with cleanse), so quota charges for old allocations
        are released, the timing memo is invalidated (stale splits must
        never replay against a fresh session), and the client's
        ``on_recover`` hook re-provisions workload state.
        """
        machine = self._machine
        clock = machine.clock
        recorder = _ChargeRecorder()
        clock.add_listener(recorder)
        try:
            with _span("serve.session-recovery", "serve",
                       tenant=client.name,
                       backend=getattr(machine.config, "backend", "hix")):
                if not self._service.alive:
                    self._restore_service()
                for token in list(guarded._handles.values()):
                    self.table.release_memory(client.record, token)
                guarded._handles.clear()
                api = machine.secure_session(
                    self._service, name=client.name,
                    channel_queue_depth=self._channel_queue_depth)
                api.cuCtxCreate()
                guarded._api = api
                client.session_epoch += 1
                self.memo.invalidate("session re-established after fault")
                if client.on_recover is not None:
                    client.on_recover(guarded)
        finally:
            clock.remove_listener(recorder)
        obs_metrics.registry().counter("serve.retry.session_recoveries").inc()
        audit_log().record(
            "serve.session_recovered", client.name,
            time=self._kernel.now if self._kernel is not None else 0.0,
            detail=f"session re-established at epoch "
                   f"{client.session_epoch} (fresh attestation + key "
                   f"exchange, memo invalidated)",
            epoch=client.session_epoch)
        host, gpu = self._split(recorder.breakdown(), crypto_eff)
        yield WorkUnit(host + gpu, None, "session-recovery")

    # -- execution ---------------------------------------------------------

    def _unit_stream(self, client: TenantClient,
                     crypto_eff: float) -> Iterator[WorkUnit]:
        """The tenant's behaviour: pulled by its kernel process.

        Each ``next()`` happens inside a kernel event, at the tenant's
        virtual production time — so real sealed requests of different
        tenants interleave on the shared machine in the same order a
        real serving loop would admit them, and admission errors,
        backpressure, and timeout settlement all land in virtual time.
        """
        machine = self._machine
        clock = machine.clock
        costs = machine.costs
        policy = self._retry_policy
        rng = (tenant_rng(self._seed, client.name)
               if policy is not None else None)
        breaker = (CircuitBreaker(self._breaker_config)
                   if self._breaker_config is not None else None)
        registry = obs_metrics.registry()
        telemetry = self.telemetry
        audit = audit_log()
        tenant = client.name

        def vnow() -> float:
            return self._kernel.now if self._kernel is not None else 0.0

        if self.capture_units:
            client.captured_units = []
        capture = client.captured_units

        def emit(unit: WorkUnit) -> WorkUnit:
            # Tee the charge (not the callbacks) into the lite-session
            # capture ledger: replaying these units charges virtual time
            # bit-identically without touching any crypto state.
            if capture is not None:
                capture.append(WorkUnit(unit.host_seconds, unit.gpu_seconds,
                                        unit.label, deadline=unit.deadline,
                                        idle=unit.idle))
            return unit

        try:
            self.table.open_context(client.record)
        except AdmissionError as exc:
            client.admission_error = str(exc)
            denied = 0
            while client.queue:
                request = client.queue.pop()
                request.outcome = DENIED
                request.error = str(exc)
                request.error_kind = KIND_QUOTA
                denied += 1
            if telemetry is not None and denied:
                telemetry.mark(shed_series(tenant), vnow(), denied)
            return

        recorder = _ChargeRecorder()
        clock.add_listener(recorder)
        try:
            api = machine.secure_session(
                self._service, name=client.name,
                channel_queue_depth=self._channel_queue_depth)
            with _span("serve.session-setup", "serve", tenant=client.name,
                       backend=getattr(machine.config, "backend", "hix")):
                api.cuCtxCreate()
        finally:
            clock.remove_listener(recorder)
        host, gpu = self._split(recorder.breakdown(), crypto_eff)
        # Session setup is serial host work (attestation + DH); any
        # engine seconds it charged are folded in rather than scheduled.
        yield emit(WorkUnit(host + gpu, None, "session-setup"))

        guarded = _GuardedApi(api, self.table, client.record,
                              self._alloc_tokens)
        client.api = guarded

        if client.reprovision_on_start and client.on_recover is not None:
            # Migrated-in session: device state stayed behind (cleansed)
            # on the source machine, so the workload's recovery hook
            # re-provisions it against the fresh session — measured and
            # charged like any other work.
            recorder = _ChargeRecorder()
            clock.add_listener(recorder)
            try:
                with _span("serve.session-reprovision", "serve",
                           tenant=client.name):
                    client.on_recover(guarded)
            finally:
                clock.remove_listener(recorder)
            host, gpu = self._split(recorder.breakdown(), crypto_eff)
            yield emit(WorkUnit(host + gpu, None, "reprovision"))

        fast = self._fast_path
        pending: List[ServeRequest] = []
        retry_backlog: Deque[ServeRequest] = deque()

        def flush_pending() -> None:
            """Run the deferred functional work of memo-hit requests.

            Real bytes still move through the sealed protocol — runs of
            consecutive requests that share a ``batch_key`` coalesce
            through the batch ops (one AEAD seal/open per fused frame)
            — but the clock is suppressed: their virtual time was
            already charged from the memo, bit-identically to the slow
            path.

            A group whose deferred execution fails (a fault landed
            between the charge and the flush) is terminal when no retry
            policy is configured; with one, each retryable request is
            re-queued for a full slow-path re-execution.
            """
            if not pending:
                return
            with clock.suppressed():
                index = 0
                while index < len(pending):
                    head = pending[index]
                    group = [head]
                    if head.batch_key is not None and head.batch_fn is not None:
                        while (index + len(group) < len(pending)
                               and pending[index + len(group)].batch_key
                               == head.batch_key):
                            group.append(pending[index + len(group)])
                    try:
                        if len(group) > 1:
                            head.batch_fn(guarded, group)
                        else:
                            head.result = head.fn(guarded)
                    except (AdmissionError, QueueFullError,
                            RequestRejected, DriverError,
                            CryptoError) as exc:
                        kind = classify_failure(exc)
                        for deferred in group:
                            deferred.attempts += 1
                            deferred.outcome = FAILED
                            deferred.error = str(exc)
                            deferred.error_kind = kind
                            if (policy is not None
                                    and policy.retries(kind,
                                                       deferred.attempts)):
                                deferred.retrying = True
                                retry_backlog.append(deferred)
                        if telemetry is not None:
                            telemetry.mark(bad_series(tenant), vnow(),
                                           len(group))
                        if kind in SECURITY_FAILURE_KINDS:
                            audit.record(
                                "serve.fault_detected", tenant,
                                time=vnow(), ok=False,
                                detail=f"deferred flush failed: {exc}",
                                error_kind=kind)
                    else:
                        for deferred in group:
                            deferred.session_epoch = client.session_epoch
                    index += len(group)
            pending.clear()

        while client.queue or retry_backlog:
            if client.drain_requested:
                # Cooperative drain: stop pulling work, flush what was
                # already charged, and let the handoff below move the
                # rest of the backlog to another machine.
                break
            if retry_backlog:
                # Retries re-execute over the real sealed path — never
                # from the memo, whose entry may describe the dead
                # session the first attempt failed against.
                request = retry_backlog.popleft()
                is_retry = True
            else:
                request = client.queue.pop()
                is_retry = False
            if breaker is not None and not is_retry:
                allowed, wait_hint = breaker.allow(
                    self._kernel.now if self._kernel is not None else 0.0)
                if not allowed:
                    request.outcome = SHED
                    request.error = "circuit breaker open"
                    request.error_kind = KIND_CIRCUIT_OPEN
                    request.retry_after = (wait_hint if wait_hint > 0.0
                                           else self._queue_retry_after(
                                               client))
                    registry.counter("serve.retry.shed").inc()
                    if telemetry is not None:
                        telemetry.mark(shed_series(tenant), vnow())
                    yield emit(WorkUnit(0.0, None, request.label))
                    continue
            if fast and not is_retry and request.memo_key is not None:
                memo_key = (request.memo_key, request.extra_host_seconds)
                cached = self.memo.get(memo_key)
                if cached is not None:
                    host, gpu = cached
                    request.host_seconds = host
                    request.gpu_seconds = gpu
                    request.session_epoch = client.session_epoch
                    client.served_seconds += host + gpu
                    client.served_count += 1
                    pending.append(request)
                    if gpu <= 0.0:
                        request.outcome = SERVED
                        if telemetry is not None:
                            telemetry.mark(good_series(tenant), vnow())
                            telemetry.observe(latency_series(tenant),
                                              vnow(), host)
                        yield emit(WorkUnit(host, None, request.label))
                        continue

                    pulled_at = vnow()

                    def settle_hit(outcome: str,
                                   request: ServeRequest = request,
                                   pulled_at: float = pulled_at) -> None:
                        if request.retrying or request.outcome == FAILED:
                            return  # deferred execution failed at flush
                        request.outcome = (SERVED if outcome == "served"
                                           else TIMEOUT)
                        if outcome != "served":
                            request.error_kind = KIND_TIMEOUT
                        if telemetry is not None:
                            settled_at = vnow()
                            if outcome == "served":
                                telemetry.mark(good_series(tenant),
                                               settled_at)
                                telemetry.observe(
                                    latency_series(tenant), settled_at,
                                    settled_at - pulled_at
                                    + request.gpu_seconds)
                            else:
                                telemetry.mark(bad_series(tenant),
                                               settled_at)
                                telemetry.mark(timeout_series(tenant),
                                               settled_at)

                    yield emit(WorkUnit(host, gpu, request.label,
                                        deadline=request.timeout,
                                        on_outcome=settle_hit))
                    continue
            else:
                memo_key = None
            flush_pending()
            request.attempts += 1
            recorder = _ChargeRecorder()
            clock.add_listener(recorder)
            try:
                with _span("serve.request", "serve", tenant=client.name,
                           request=request.label, seq=request.seq):
                    clock.advance(costs.serve_dispatch_latency,
                                  "serve_dispatch")
                    if request.extra_host_seconds > 0.0:
                        clock.advance(request.extra_host_seconds, "launch")
                    ok = True
                    try:
                        request.result = request.fn(guarded)
                    except AdmissionError as exc:
                        ok = False
                        request.outcome = DENIED
                        request.error = str(exc)
                        request.error_kind = KIND_QUOTA
                    except QueueFullError as exc:
                        # Channel backlog is the lower level's
                        # backpressure; surface it as such rather than
                        # as a protocol fault.
                        ok = False
                        request.outcome = BACKPRESSURE
                        request.error = str(exc)
                        request.error_kind = KIND_QUEUE_FULL
                        request.retry_after = self._queue_retry_after(client)
                    except (RequestRejected, DriverError,
                            CryptoError) as exc:
                        ok = False
                        request.outcome = FAILED
                        request.error = str(exc)
                        request.error_kind = classify_failure(exc)
            finally:
                clock.remove_listener(recorder)
            host, gpu = self._split(recorder.breakdown(), crypto_eff)
            request.host_seconds = host
            request.gpu_seconds = gpu
            request.session_epoch = client.session_epoch
            if ok and memo_key is not None:
                # Only successful runs are memoized: a failure's timing
                # depends on where it failed, not on the request shape.
                self.memo.put(memo_key, host, gpu)
            if breaker is not None:
                now = self._kernel.now if self._kernel is not None else 0.0
                if ok:
                    breaker.record_success(now)
                elif request.error_kind in BREAKER_KINDS:
                    breaker.record_failure(now)
            if not ok:
                failed_at = vnow()
                if telemetry is not None:
                    if request.outcome == FAILED:
                        telemetry.mark(bad_series(tenant), failed_at)
                    else:  # quota denial / channel backpressure: a shed
                        telemetry.mark(shed_series(tenant), failed_at)
                if request.error_kind in SECURITY_FAILURE_KINDS:
                    audit.record(
                        "serve.fault_detected", tenant, time=failed_at,
                        ok=False,
                        detail=f"{request.label}: {request.error}",
                        error_kind=request.error_kind)
                # A denied/failed request consumed host time only; any
                # engine time it managed to charge is not scheduled.
                yield emit(WorkUnit(host + gpu, None, request.label))
                kind = request.error_kind
                if policy is not None and policy.retries(kind,
                                                         request.attempts):
                    delay = policy.backoff(request.attempts, rng)
                    registry.counter("serve.retry.attempts").inc()
                    registry.histogram(
                        "serve.retry.backoff_seconds").observe(delay)
                    yield emit(WorkUnit(delay, None,
                                        f"{request.label}:backoff",
                                        idle=True))
                    if kind in RECOVERY_KINDS:
                        for unit in self._recover_session(client, guarded,
                                                          crypto_eff):
                            yield emit(unit)
                    request.retrying = True
                    request.outcome = PENDING
                    retry_backlog.append(request)
                continue
            client.served_seconds += host + gpu
            client.served_count += 1
            if gpu <= 0.0:
                # Host-only request (malloc/free/module-load): served
                # inline, never visits the engine queue.
                request.outcome = SERVED
                if telemetry is not None:
                    telemetry.mark(good_series(tenant), vnow())
                    telemetry.observe(latency_series(tenant), vnow(), host)
                yield emit(WorkUnit(host, None, request.label))
                continue

            pulled_at = vnow()

            def settle(outcome: str, request: ServeRequest = request,
                       pulled_at: float = pulled_at) -> None:
                request.outcome = SERVED if outcome == "served" else TIMEOUT
                if outcome != "served":
                    request.error_kind = KIND_TIMEOUT
                if telemetry is not None:
                    settled_at = vnow()
                    if outcome == "served":
                        telemetry.mark(good_series(tenant), settled_at)
                        telemetry.observe(
                            latency_series(tenant), settled_at,
                            settled_at - pulled_at + request.gpu_seconds)
                    else:
                        telemetry.mark(bad_series(tenant), settled_at)
                        telemetry.mark(timeout_series(tenant), settled_at)

            yield emit(WorkUnit(host, gpu, request.label,
                                deadline=request.timeout, on_outcome=settle))

        flush_pending()
        draining = client.drain_requested
        recorder = _ChargeRecorder()
        clock.add_listener(recorder)
        try:
            with _span("serve.teardown", "serve", tenant=client.name):
                try:
                    guarded._api.cuCtxDestroy()
                except (DriverError, CryptoError):
                    # The session/device died and no retry policy
                    # resurrected it; quota bookkeeping still closes.
                    pass
                if draining:
                    # The enclave context was destroyed with cleanse;
                    # release the quota charges of the allocations that
                    # died with it (the target re-provisions its own).
                    for token in list(guarded._handles.values()):
                        self.table.release_memory(client.record, token)
                    guarded._handles.clear()
                self.table.close_context(client.record)
        finally:
            clock.remove_listener(recorder)
        # Satellite fix: session teardown is a memo-invalidation point.
        # Entries are only dropped once the *last* context closes — the
        # splits stay valid between tenants of one run (they share the
        # session configuration), but never outlive the sessions they
        # were measured against.
        if all(record.contexts_open == 0 for record in self.table.tenants):
            self.memo.invalidate("all sessions closed")
        audit.record(
            "serve.session_closed", tenant, time=vnow(),
            detail="enclave context destroyed with cleanse"
                   + (" (cooperative drain)" if draining else ""),
            epoch=client.session_epoch, drained=draining)
        host, gpu = self._split(recorder.breakdown(), crypto_eff)
        yield emit(WorkUnit(host + gpu, None, "teardown"))

        if draining:
            # Hand the unexecuted backlog off *after* the teardown unit
            # has charged: the next pull happens once teardown's host
            # time elapsed, so the target's fresh session setup starts
            # strictly after the source session closed — sessions move
            # between isolation domains only via full re-establishment.
            remaining: List[ServeRequest] = list(retry_backlog)
            retry_backlog.clear()
            while client.queue:
                remaining.append(client.queue.pop())
            if remaining:
                handed = set(map(id, remaining))
                client.requests = [request for request in client.requests
                                   if id(request) not in handed]
                for request in remaining:
                    request.outcome = MIGRATED
                    request.error = None
                    request.error_kind = None
                    request.retrying = False
            client.migrated_away = len(remaining)
            registry.counter("serve.migrations.drained").inc()
            if client.on_drained is not None:
                client.on_drained(remaining)

    def start(self, kernel: EventClock,
              extra_lanes: Sequence[TenantLane] = ()) -> LaneRun:
        """Prepare this engine's lanes on *kernel* without draining it.

        The fleet tier calls ``start`` on every machine's engine with
        ONE shared kernel, drains it once, then reads each engine's
        :meth:`finish` — the machines' virtual timelines interleave
        instead of running back to back.  ``run`` is exactly
        ``start`` + ``kernel.run()`` + ``finish``, so a bare engine run
        and a 1-machine fleet produce bit-identical reports.

        *extra_lanes* ride along on the same engine Resource without a
        tenant client — the lite-session path (see
        :mod:`repro.fleet.lite`): their charges are analytic, so they
        need no crypto state and their report rows are read straight
        off the lane accounting.
        """
        self._kernel = kernel
        if self.telemetry is not None:
            # Pure observation of the kernel's charges: drives the
            # sampler's window boundaries without scheduling events or
            # advancing any clock, so simulated time is unperturbed.
            self.telemetry.attach(kernel)
        self._scheduler.reset()
        crypto_eff = self._crypto_eff = self._resolve_crypto_efficiency()
        # (Re)bind the memo to this run's timing configuration — any
        # cost-model or session-config change invalidates cached splits.
        self.memo.configure(self._memo_token(crypto_eff))

        lane_names: List[str] = []
        seen_names = set()
        for index, client in enumerate(self._clients):
            name = client.name
            if name in seen_names:
                name = f"{name}#{index}"
            lane_names.append(name)
            seen_names.add(name)

        lanes = [TenantLane(units=self._unit_stream(client, crypto_eff),
                            weight=client.record.quota.weight,
                            max_inflight=client.record.quota.max_inflight,
                            name=lane_names[index])
                 for index, client in enumerate(self._clients)]
        self._lane_clients = list(self._clients)
        for lane in extra_lanes:
            name = lane.name or f"lane{len(lane_names)}"
            if name in seen_names:
                name = f"{name}#{len(lane_names)}"
            lane.name = name
            lane_names.append(name)
            seen_names.add(name)
            lanes.append(lane)
            self._lane_clients.append(None)
        self._lane_names = lane_names
        # A plain FIFO scheduler selects min-(ready, seq) — exactly the
        # kernel-native arbitration — so hand the Resource None and let
        # it use its O(log lanes) head heap instead of an O(lanes) scan
        # per dispatch.  Identical decisions (the scheduler docstring
        # pins the equivalence); only subclasses (chaos wrappers) keep
        # the pluggable path.
        scheduler = self._scheduler
        if type(scheduler) is FifoScheduler:
            scheduler = None
        self._lane_run = LaneRun(lanes, scheduler,
                                 self._machine.costs.gpu_context_switch,
                                 kernel)
        return self._lane_run

    def admit_lane(self, lane: TenantLane,
                   client: Optional[TenantClient] = None) -> int:
        """Add a lane to a started run at the kernel's current time."""
        if self._lane_run is None:
            raise RuntimeError("admit_lane requires a started run")
        name = lane.name or f"lane{len(self._lane_names)}"
        if name in self._lane_names:
            name = f"{name}#{len(self._lane_names)}"
        lane.name = name
        self._lane_names.append(name)
        self._lane_clients.append(client)
        return self._lane_run.add_lane(lane)

    def receive_migration(self, name: str, requests: List[ServeRequest],
                          session_epoch: int,
                          quota: Optional[TenantQuota] = None,
                          on_recover: Optional[Callable[[Any], None]] = None,
                          ) -> TenantClient:
        """Admit a drained-out session mid-run and start serving it.

        The migration protocol's landing half: a fresh
        :class:`TenantClient` at ``session_epoch`` (the source's epoch
        plus one — requests served here are distinguishable from
        pre-drain ones, which keeps the chaos layer's cleanse checks
        meaningful across machines), the source's unexecuted requests
        resubmitted in order, and a new lane whose stream runs the full
        trust path — attestation, key exchange, ``on_recover``
        re-provisioning — before serving.  Nothing but the request
        ledger crosses machines: no keys, no device state, no memo
        entries.
        """
        client = self.add_tenant(name, quota)
        client.session_epoch = session_epoch
        client.on_recover = on_recover
        client.reprovision_on_start = True
        for request in requests:
            request.outcome = PENDING
            request.retrying = False
            client.queue.submit(request)
            client.requests.append(request)
        lane = TenantLane(units=self._unit_stream(client, self._crypto_eff),
                          weight=client.record.quota.weight,
                          max_inflight=client.record.quota.max_inflight,
                          name=name)
        self.admit_lane(lane, client)
        obs_metrics.registry().counter("serve.migrations.received").inc()
        return client

    def finish(self) -> ServeReport:
        """Assemble the report after the shared kernel has drained."""
        if self._lane_run is None:
            raise RuntimeError("finish requires a started run")
        result = self._lane_run.finish()
        self._lane_run = None
        lane_names = self._lane_names
        gpu_busy = sum(t.gpu_busy for t in result.timelines)
        gpu_utilization = (gpu_busy / result.makespan
                           if result.makespan > 0.0 else 0.0)
        lane_events: Dict[str, List[TraceEvent]] = {
            name: [] for name in lane_names}
        for tenant, event in result.events:
            lane_events[lane_names[tenant]].append(event)

        tenants: List[TenantReport] = []
        for index, client in enumerate(self._lane_clients):
            timeline = result.timelines[index]
            if client is not None:
                tenants.append(build_tenant_report(
                    client, lane_names[index], timeline,
                    result.stall_seconds[index]))
            else:
                # Lite lane: no request ledger — the engine-visit
                # accounting is the whole story.
                tenants.append(TenantReport(
                    name=lane_names[index],
                    submitted=result.served[index] + result.timed_out[index],
                    rejected_submits=0,
                    served=result.served[index],
                    timed_out=result.timed_out[index],
                    denied=0, backpressured=0, failed=0,
                    finish_time=timeline.finish_time,
                    gpu_busy=timeline.gpu_busy,
                    host_busy=timeline.host_busy,
                    waits=timeline.waits,
                    stall_seconds=result.stall_seconds[index],
                    peak_memory=0, quota_denials=0))
        report = ServeReport(
            scheduler=self._scheduler.name,
            makespan=result.makespan,
            context_switches=result.context_switches,
            gpu_utilization=gpu_utilization,
            tenants=tenants,
            lanes=lane_events,
        )
        if self.telemetry is not None:
            self.telemetry.finalize(report.makespan)
        self._publish_metrics(report)
        return report

    def slo_objectives(self) -> Dict[str, SloObjective]:
        """Per-tenant objectives declared on admitted quotas
        (``TenantQuota.slo``), ready for an ``AlertManager``."""
        objectives: Dict[str, SloObjective] = {}
        for record in self.table.tenants:
            slo = getattr(record.quota, "slo", None)
            if slo is not None:
                objectives[record.name] = slo
        return objectives

    def run(self, kernel: Optional[EventClock] = None) -> ServeReport:
        """Execute every queued request and return the serving report.

        One kernel :class:`~repro.sim.engine.Process` per tenant drives
        the tenant's unit stream to exhaustion over the shared engine
        Resource; the report is read off the kernel's lane accounting.

        *kernel* lets a caller pre-schedule events on the run's event
        clock before the lanes start — the chaos layer's injection
        point.  A fresh kernel with no extra events is exactly the
        default, so an idle chaos harness is a true no-op.
        """
        kernel = kernel if kernel is not None else EventClock()
        self.start(kernel)
        kernel.run()
        return self.finish()

    def _publish_metrics(self, report: ServeReport) -> None:
        """Mirror the run's report into the process metrics registry.

        Counters accumulate across runs (they are process totals, like
        the engine's kernel counters); the gauges describe the most
        recent run.  Pure observability — nothing reads these back into
        scheduling decisions.
        """
        registry = obs_metrics.registry()
        backend = getattr(getattr(self._machine, "config", None),
                          "backend", "hix")
        registry.counter(f"serve.backend.{backend}.runs").inc()
        for name, total in report_totals(report).items():
            if total:
                registry.counter(name).inc(total)
        registry.counter("serve.ctx_switches").inc(report.context_switches)
        registry.gauge("serve.makespan_seconds").set(report.makespan)
        registry.gauge("serve.gpu_utilization").set(report.gpu_utilization)
        gpu_hist = registry.histogram("serve.request_gpu_seconds")
        host_hist = registry.histogram("serve.request_host_seconds")
        wait_hist = registry.histogram("serve.tenant_wait_seconds")
        for client in self._clients:
            for request in client.requests:
                gpu_hist.observe(request.gpu_seconds)
                host_hist.observe(request.host_seconds)
        for tenant in report.tenants:
            wait_hist.observe(tenant.waits)
