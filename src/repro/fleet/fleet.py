"""The fleet tier: M simulated machines behind one router, one clock.

Each :class:`FleetMachine` is a full independent isolation domain — its
own :class:`~repro.system.Machine` (SGX unit, PCIe tree, GPU) and
:class:`~repro.serve.engine.ServeEngine` — but all machines' lanes run
on ONE shared :class:`~repro.sim.engine.EventClock`, so their virtual
timelines interleave the way racks behind a load balancer do, instead
of running back to back.  The paper's trust argument scales unchanged:
machines share nothing but the clock — no keys, no memo entries, no
device state — and a session can only move between machines via full
re-establishment (fresh attestation + key exchange + epoch bump), the
drain-based migration protocol below.

Run shape::

    fleet = Fleet(machines=4, policy="least-loaded")
    client = fleet.add_session("alice")        # routed, full crypto
    client.submit("alice:op", fn)
    fleet.add_lite_sessions(profile, 10_000)   # analytic, no crypto
    fleet.plan_migration("alice", target=2, at=0.030)
    report = fleet.run()                       # one shared kernel drain

A 1-machine fleet with full-crypto sessions is **bit-identical** to a
bare ``ServeEngine.run()`` — the router decides placement synchronously
(no kernel events), and ``Fleet.run`` is exactly the engine's
``start``/``kernel.run``/``finish`` decomposition (pinned by
``tests/property/test_prop_fleet.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.fleet.lite import LiteProfile
from repro.fleet.router import MachineStatus, Placement, Router, SessionSpec
from repro.obs import metrics as obs_metrics
from repro.obs.audit import audit_log
from repro.obs.tracer import span as _span
from repro.serve.engine import ServeEngine, TenantClient
from repro.serve.queues import ServeRequest
from repro.serve.report import ServeReport, merge_reports
from repro.serve.resilience import BreakerConfig, RetryPolicy
from repro.serve.session import TenantQuota
from repro.sim.engine import EventClock, TenantLane
from repro.system import Machine, MachineConfig


class FleetMachine:
    """One machine of the fleet: isolation domain + serving engine."""

    def __init__(self, index: int, name: str, machine: Machine,
                 engine: ServeEngine) -> None:
        self.index = index
        self.name = name
        self.machine = machine
        self.engine = engine
        #: Lite-session lanes riding along on this engine's Resource.
        self.lite_lanes: List[TenantLane] = []
        #: Placement-time accounting (the router sees these *before*
        #: any request executed, when the session table is still idle).
        self.reserved_bytes = 0
        self.est_seconds = 0.0
        self.lite_est_seconds = 0.0
        self.weight = 1.0
        self.healthy = True
        self.draining = False

    @property
    def sessions(self) -> int:
        return len(self.engine.table)

    def drain_estimate(self) -> float:
        """How long this machine's queued backlog needs to drain.

        Mirrors the engine's per-tenant ``queue_full`` hint at machine
        scope: queued request count times the observed mean service
        time (calibrated dispatch latency before anything completed),
        plus the unstarted lite work — the router's retry-after input.
        """
        costs = self.machine.costs
        total = 0.0
        for client in self.engine.clients:
            if client.served_count:
                per_request = client.served_seconds / client.served_count
            else:
                per_request = costs.serve_dispatch_latency
            total += len(client.queue) * per_request
        return total + self.lite_est_seconds

    def status(self) -> MachineStatus:
        table = self.engine.table
        in_use = sum(record.memory_in_use for record in table.tenants)
        return MachineStatus(
            index=self.index,
            name=self.name,
            sessions=len(table),
            capacity=table.max_tenants,
            lite_sessions=len(self.lite_lanes),
            pending_seconds=self.est_seconds + self.lite_est_seconds,
            drain_seconds=self.drain_estimate(),
            memory_committed=self.reserved_bytes + in_use,
            memory_budget=self.machine.config.vram_size_actual,
            backend=self.machine.config.backend,
            weight=self.weight,
            draining=self.draining,
            healthy=self.healthy,
        )

    def note_shed_fraction(self, shed: int, submitted: int,
                           threshold: float = 0.5) -> None:
        """Health from breaker/shed signals: a machine shedding more
        than *threshold* of its submissions is marked unhealthy so the
        router stops routing new sessions at it."""
        if submitted > 0 and shed / submitted > threshold:
            self.healthy = False


@dataclass
class MigrationPlan:
    """A scheduled drain-and-move: *tenant* leaves *source* at *at*."""

    tenant: str
    source: int
    target: int
    at: float


@dataclass
class MigrationRecord:
    """What actually happened when a plan fired."""

    plan: MigrationPlan
    drained_at: float = -1.0
    landed_at: float = -1.0
    requests_moved: int = 0
    target_client: Optional[TenantClient] = None

    @property
    def completed(self) -> bool:
        return self.landed_at >= 0.0


@dataclass
class FleetReport:
    """Outcome of one :meth:`Fleet.run`."""

    policy: str
    scheduler: str
    machine_names: List[str]
    reports: List[ServeReport]
    merged: ServeReport
    placements: Dict[str, int]
    migrations: List[MigrationRecord] = field(default_factory=list)

    @property
    def makespan(self) -> float:
        return self.merged.makespan

    def machine(self, name: str) -> ServeReport:
        return self.reports[self.machine_names.index(name)]

    def render(self, width: int = 60) -> str:
        lines = [
            f"fleet: {len(self.reports)} machine(s), policy={self.policy}, "
            f"scheduler={self.scheduler}, "
            f"makespan={self.makespan * 1e3:.3f} ms, "
            f"sessions={len(self.merged.tenants)}, "
            f"migrations={sum(1 for m in self.migrations if m.completed)}"
            f"/{len(self.migrations)}",
        ]
        for name, report in zip(self.machine_names, self.reports):
            served = sum(t.served for t in report.tenants)
            migrated = sum(t.migrated for t in report.tenants)
            lines.append(
                f"  {name}: {len(report.tenants)} session(s), "
                f"served={served}, migrated={migrated}, "
                f"finish={report.makespan * 1e3:.3f} ms, "
                f"gpu_util={report.gpu_utilization:.1%}")
        return "\n".join(lines)


class Fleet:
    """M machines, one router, one clock."""

    def __init__(self, machines: Union[int, Sequence[MachineConfig]] = 2,
                 scheduler: str = "fair",
                 policy: Union[str, object] = "least-loaded",
                 machine_config: Optional[MachineConfig] = None,
                 max_tenants: int = 8,
                 default_quota: Optional[TenantQuota] = None,
                 crypto_efficiency: Optional[float] = None,
                 fast_path: bool = True,
                 retry_policy: Optional[RetryPolicy] = None,
                 breaker: Optional[BreakerConfig] = None,
                 capture_units: bool = False,
                 seed: int = 0) -> None:
        # ``machines`` is a count (homogeneous fleet, every machine built
        # from ``machine_config``) or a sequence of per-machine
        # MachineConfigs — a heterogeneous fleet mixing TEE backends,
        # VRAM sizes, or suite choices behind one router.
        if isinstance(machines, int):
            if machines < 1:
                raise ValueError("a fleet needs at least one machine")
            base = machine_config if machine_config is not None \
                else MachineConfig()
            configs: List[MachineConfig] = [base] * machines
        else:
            configs = list(machines)
            if not configs:
                raise ValueError("a fleet needs at least one machine")
            if machine_config is not None:
                raise ValueError("pass either a machine count with "
                                 "machine_config or a sequence of "
                                 "per-machine configs, not both")
        self.router = Router(policy)
        self._scheduler_name = scheduler
        self.machines: List[FleetMachine] = []
        for index, config in enumerate(configs):
            machine = Machine(config)
            engine = ServeEngine(machine, scheduler=scheduler,
                                 max_tenants=max_tenants,
                                 default_quota=default_quota,
                                 crypto_efficiency=crypto_efficiency,
                                 fast_path=fast_path,
                                 retry_policy=retry_policy,
                                 breaker=breaker,
                                 seed=seed + index,
                                 capture_units=capture_units)
            self.machines.append(
                FleetMachine(index, f"m{index}", machine, engine))
        self.plans: List[MigrationPlan] = []
        self._lite_count = 0

    # -- placement ----------------------------------------------------------

    def statuses(self) -> List[MachineStatus]:
        return [machine.status() for machine in self.machines]

    def place(self, spec: SessionSpec) -> FleetMachine:
        """Route *spec* through the placement policy; book its costs.

        Every decision lands in the registry as a per-policy outcome
        counter (``fleet.placement.<policy>.placed`` / ``.rejected``),
        so a dashboard can tell a router that is admitting from one
        that is bouncing sessions at the door.
        """
        registry = obs_metrics.registry()
        policy = self.router.policy_name
        try:
            index = self.router.place(spec, self.statuses())
        except Exception:
            registry.counter(f"fleet.placement.{policy}.rejected").inc()
            raise
        registry.counter(f"fleet.placement.{policy}.placed").inc()
        chosen = self.machines[index]
        chosen.reserved_bytes += spec.memory_bytes
        if spec.lite:
            chosen.lite_est_seconds += spec.est_seconds
        else:
            chosen.est_seconds += spec.est_seconds
        return chosen

    def add_session(self, name: str,
                    quota: Optional[TenantQuota] = None,
                    est_seconds: float = 0.0,
                    memory_bytes: int = 0,
                    weight: float = 1.0) -> TenantClient:
        """Admit a full-crypto session; returns its client for submits."""
        spec = SessionSpec(name=name, est_seconds=est_seconds,
                           memory_bytes=memory_bytes, weight=weight)
        chosen = self.place(spec)
        try:
            client = chosen.engine.add_tenant(name, quota)
        except Exception:
            chosen.reserved_bytes -= spec.memory_bytes
            chosen.est_seconds -= spec.est_seconds
            self.router.forget(name)
            obs_metrics.registry().counter(
                f"fleet.placement.{self.router.policy_name}"
                ".rolled_back").inc()
            raise
        return client

    def add_lite_session(self, name: str, profile: LiteProfile,
                         weight: float = 1.0, max_inflight: int = 1,
                         memory_bytes: int = 0) -> FleetMachine:
        """Admit a lite session replaying *profile*; returns its machine."""
        spec = SessionSpec(name=name,
                           est_seconds=profile.total_seconds(),
                           memory_bytes=memory_bytes,
                           weight=weight, lite=True)
        chosen = self.place(spec)
        chosen.lite_lanes.append(
            profile.lane(name, weight=weight, max_inflight=max_inflight))
        self._lite_count += 1
        return chosen

    def add_lite_sessions(self, profile: LiteProfile, count: int,
                          prefix: str = "lite",
                          weight: float = 1.0,
                          max_inflight: int = 1) -> None:
        """Bulk-admit *count* lite sessions replaying *profile*."""
        for index in range(count):
            self.add_lite_session(f"{prefix}{index}", profile,
                                  weight=weight, max_inflight=max_inflight)

    def client_of(self, tenant: str) -> TenantClient:
        """The (current) client serving *tenant*, wherever it lives."""
        index = self.router.machine_of(tenant)
        if index is None:
            raise KeyError(tenant)
        for client in self.machines[index].engine.clients:
            if client.name == tenant:
                return client
        raise KeyError(tenant)

    # -- migration ----------------------------------------------------------

    def plan_migration(self, tenant: str, target: int,
                       at: float) -> MigrationPlan:
        """Schedule a drain-based move of *tenant* to machine *target*.

        At virtual time *at* the source session is asked to drain: it
        stops pulling new requests, flushes in-flight work, tears its
        session down (context destroyed with cleanse, quota released),
        and hands the unexecuted backlog to the target — where a fresh
        client at the *next session epoch* re-runs the full trust path
        (attestation, key exchange, ``on_recover`` re-provisioning)
        before serving.  No keys, memo entries, or device state cross
        machines; the epoch bump keeps residual-memory checks exact.
        """
        source = self.router.machine_of(tenant)
        if source is None:
            raise KeyError(f"unknown tenant {tenant!r}")
        if not 0 <= target < len(self.machines):
            raise ValueError(f"no machine {target} in this fleet")
        if target == source:
            raise ValueError(
                f"tenant {tenant!r} already lives on machine {target}")
        plan = MigrationPlan(tenant=tenant, source=source,
                             target=target, at=at)
        self.plans.append(plan)
        return plan

    def _schedule_migration(self, kernel: EventClock, plan: MigrationPlan,
                            record: MigrationRecord) -> None:
        source = self.machines[plan.source]
        target = self.machines[plan.target]
        client = None
        for candidate in source.engine.clients:
            if candidate.name == plan.tenant:
                client = candidate
        if client is None:
            raise KeyError(
                f"tenant {plan.tenant!r} not on machine {plan.source}")
        registry = obs_metrics.registry()

        def handoff(remaining: List[ServeRequest],
                    client: TenantClient = client) -> None:
            # Runs inside the source stream's final kernel event, after
            # its teardown charge: the landing lane starts at kernel.now
            # so target session setup strictly follows source close.
            record.drained_at = kernel.now
            source.draining = False
            with _span("fleet.migration", "fleet", tenant=plan.tenant,
                       source=source.name, target=target.name):
                landed = target.engine.receive_migration(
                    plan.tenant, remaining,
                    session_epoch=client.session_epoch + 1,
                    quota=client.record.quota,
                    on_recover=client.on_recover)
            record.landed_at = kernel.now
            record.requests_moved = len(remaining)
            record.target_client = landed
            self.router.placements[plan.tenant] = Placement(
                spec=SessionSpec(name=plan.tenant), machine=plan.target)
            registry.counter("fleet.migrations.completed").inc()
            drain_seconds = record.drained_at - plan.at
            registry.histogram("fleet.migration.drain_seconds").observe(
                drain_seconds)
            registry.counter("fleet.migration.requests_moved").inc(
                len(remaining))
            audit_log().record(
                "fleet.migration", plan.tenant, time=record.landed_at,
                detail=(f"drained off {source.name} in "
                        f"{drain_seconds * 1e3:.3f} ms, re-established "
                        f"on {target.name} at epoch "
                        f"{landed.session_epoch} with "
                        f"{len(remaining)} request(s) moved"),
                source=source.name, target=target.name,
                epoch=landed.session_epoch,
                requests_moved=len(remaining))

        def begin(event, client: TenantClient = client) -> None:
            source.draining = True
            client.on_drained = handoff
            client.request_drain()
            registry.counter("fleet.migrations.started").inc()

        kernel.schedule(plan.at, begin)

    # -- execution ----------------------------------------------------------

    def run(self, kernel: Optional[EventClock] = None) -> FleetReport:
        """Drain every machine's lanes over one shared kernel.

        *kernel* lets the chaos layer pre-schedule fault events exactly
        as it does for a bare engine run; faults target one machine of
        the fleet, and the others' isolation domains are unaffected by
        construction (they share nothing but the clock).
        """
        kernel = kernel if kernel is not None else EventClock()
        records = [MigrationRecord(plan=plan) for plan in self.plans]
        with _span("fleet.run", "fleet",
                   machines=len(self.machines),
                   policy=self.router.policy_name):
            for machine in self.machines:
                with _span("fleet.machine-start", "fleet",
                           machine=machine.name):
                    machine.engine.start(kernel,
                                         extra_lanes=machine.lite_lanes)
            for plan, record in zip(self.plans, records):
                self._schedule_migration(kernel, plan, record)
            kernel.run()
            reports = [machine.engine.finish()
                       for machine in self.machines]
        names = [machine.name for machine in self.machines]
        merged = merge_reports(reports, labels=names,
                               scheduler=self._scheduler_name)
        for machine, report in zip(self.machines, reports):
            machine.note_shed_fraction(
                sum(t.shed for t in report.tenants),
                sum(t.submitted for t in report.tenants))
        placements = {name: placement.machine
                      for name, placement in self.router.placements.items()}
        fleet_report = FleetReport(
            policy=self.router.policy_name,
            scheduler=self._scheduler_name,
            machine_names=names,
            reports=reports,
            merged=merged,
            placements=placements,
            migrations=records,
        )
        self._publish_metrics(fleet_report)
        return fleet_report

    def _publish_metrics(self, report: FleetReport) -> None:
        registry = obs_metrics.registry()
        registry.gauge("fleet.machines").set(len(report.reports))
        registry.gauge("fleet.sessions").set(len(report.merged.tenants))
        registry.gauge("fleet.makespan_seconds").set(report.makespan)
        moved = sum(record.requests_moved for record in report.migrations
                    if record.completed)
        if moved:
            registry.counter("fleet.requests_migrated").inc(moved)
        for machine, machine_report in zip(self.machines, report.reports):
            registry.gauge(
                f"fleet.machine.{machine.name}.finish_seconds").set(
                    machine_report.makespan)
