"""Cluster-scale multi-GPU serving behind a fleet router (repro.fleet).

The serving layer drives N tenants through one GPU enclave; this tier
drives M such machines behind a placement router, on one shared event
clock:

* :mod:`~repro.fleet.router` — session admission + pluggable placement
  (least-loaded, quota-pressure, memory-fit, weighted-hash) with
  per-machine health, and structured rejections carrying queue-drain
  ``retry_after`` hints;
* :mod:`~repro.fleet.lite` — lightweight sessions charging analytic
  costs with no per-tenant crypto state (10k–1M-user sweeps);
* :mod:`~repro.fleet.fleet` — the :class:`Fleet` itself: shared-kernel
  multi-machine runs, drain-based session migration with full
  re-establishment on the target, merged fleet reports.
"""

from repro.fleet.fleet import (
    Fleet,
    FleetMachine,
    FleetReport,
    MigrationPlan,
    MigrationRecord,
)
from repro.fleet.lite import LiteProfile
from repro.fleet.router import (
    POLICY_NAMES,
    MachineStatus,
    Placement,
    Router,
    SessionSpec,
    make_policy,
)

__all__ = [
    "Fleet",
    "FleetMachine",
    "FleetReport",
    "MigrationPlan",
    "MigrationRecord",
    "LiteProfile",
    "POLICY_NAMES",
    "MachineStatus",
    "Placement",
    "Router",
    "SessionSpec",
    "make_policy",
]
