"""Lite sessions: analytic cost charging without per-tenant crypto.

A full-crypto tenant is expensive to simulate — real attestation, key
exchange, AEAD seals on every request — which caps sweeps at hundreds
of tenants.  A :class:`LiteProfile` is the timing skeleton of such a
session: the exact sequence of :class:`~repro.sim.engine.WorkUnit`
charges it places on the virtual timeline, with no keys, channels, or
device state behind them.  Replaying the profile through a plain
kernel lane charges virtual time **bit-identically** to the full
session it was captured from (pinned by the charge-parity property in
``tests/property/test_prop_fleet.py``), at the cost of one generator
per lane instead of one enclave session — which is what lets fleet
sweeps scale to 10k–1M simulated users.

Two ways to build one:

* :meth:`LiteProfile.from_client` — replay a ledger captured from a
  full-crypto run (``ServeEngine(capture_units=True)``).  Exact.
* :meth:`LiteProfile.from_workload` — derive units from the analytic
  Figures 8/9 segment model; no machine needed at all.  This is the
  same model ``evalkit.fleet_sweep`` cross-checks fleet makespans
  against.

Profiles are immutable in practice and lanes share the unit list, so a
100k-session sweep holds one profile, not 100k copies.  For extreme
scales :meth:`coalesced` folds consecutive units into at most
``max_units`` buckets — total host and GPU seconds are preserved
exactly, interleaving granularity is traded for event count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.sim.costs import CostModel
from repro.sim.engine import TenantLane, WorkUnit
from repro.workloads.base import Workload


@dataclass
class LiteProfile:
    """A replayable unit ledger for lightweight sessions."""

    units: List[WorkUnit]
    label: str = "lite"

    @classmethod
    def from_client(cls, client, label: str = "") -> "LiteProfile":
        """Profile from a full-crypto client's captured unit ledger.

        *client* must have run under ``ServeEngine(capture_units=True)``
        — its ``captured_units`` is the exact charge sequence the
        session placed on the timeline (session setup, every serve,
        backoffs, teardown).  Replaying it charges identically.
        """
        if client.captured_units is None:
            raise ValueError(
                f"client {client.name!r} has no captured units; run its "
                "engine with capture_units=True first")
        return cls(units=list(client.captured_units),
                   label=label or f"lite:{client.name}")

    @classmethod
    def from_workload(cls, workload: Workload,
                      costs: Optional[CostModel] = None,
                      mode: str = "hix",
                      label: str = "") -> "LiteProfile":
        """Profile from the analytic segment model (no machine needed).

        Uses the same per-user host/gpu segment decomposition the
        Figures 8/9 multi-user model schedules — so a fleet of these
        profiles under FIFO is *the analytic model*, machine-sharded.
        """
        # Imported here: evalkit's package __init__ pulls in the serve
        # sweeps, and this module is imported by repro.fleet's own
        # __init__ — a module-level import would tie the two packages'
        # import orders together for no benefit.
        from repro.evalkit.harness import GDEV, HIX, user_segments
        from repro.serve.timeline import segments_to_units
        costs = costs or CostModel()
        mode_name = {"hix": HIX, "gdev": GDEV}.get(mode, mode)
        segments = user_segments(workload, costs, mode_name)
        return cls(units=segments_to_units(segments),
                   label=label or f"lite:{workload.name}")

    # -- derived views ------------------------------------------------------

    def total_seconds(self) -> float:
        """Total virtual seconds the profile charges (host + gpu)."""
        return sum(unit.host_seconds + (unit.gpu_seconds or 0.0)
                   for unit in self.units)

    def gpu_seconds(self) -> float:
        return sum(unit.gpu_seconds or 0.0 for unit in self.units)

    def coalesced(self, max_units: int = 8) -> "LiteProfile":
        """Fold the ledger into at most *max_units* units.

        Consecutive units merge by summing host and GPU seconds (a
        merged unit is host-then-gpu, like any unit), so totals are
        preserved exactly while the kernel event count drops by the
        fold factor — the knob that makes 100k+-session sweeps cheap.
        Deadlines and idle flags do not survive folding; profiles that
        need them should replay uncoalesced.
        """
        if max_units < 1:
            raise ValueError("max_units must be >= 1")
        if len(self.units) <= max_units:
            return self
        folded: List[WorkUnit] = []
        per_bucket = -(-len(self.units) // max_units)  # ceil division
        for start in range(0, len(self.units), per_bucket):
            bucket = self.units[start:start + per_bucket]
            host = sum(unit.host_seconds for unit in bucket)
            gpu = sum(unit.gpu_seconds or 0.0 for unit in bucket)
            folded.append(WorkUnit(host, gpu if gpu > 0.0 else None,
                                   f"{self.label}[{len(folded)}]"))
        return LiteProfile(units=folded, label=self.label)

    def lane(self, name: str, weight: float = 1.0,
             max_inflight: int = 1,
             on_exhausted=None) -> TenantLane:
        """A kernel lane replaying this profile.

        Lanes share the profile's unit list (units are never mutated by
        the kernel), so a million lanes cost a million generators, not
        a million ledgers.
        """
        return TenantLane(units=self.units, weight=weight,
                          max_inflight=max_inflight, name=name,
                          on_exhausted=on_exhausted)
