"""The fleet's front door: pluggable session placement with health.

A :class:`Router` decides which simulated machine a new session lands
on.  Placement is synchronous policy — no kernel events are consumed —
so a 1-machine fleet stays bit-identical to a bare engine run: the
router's only trace is *where* sessions went, never *when*.

Policies see immutable :class:`MachineStatus` snapshots and return one
of them (or ``None`` when nothing fits, which the router turns into a
structured :class:`~repro.errors.PlacementError`).  Every policy breaks
ties by machine index, so placement is deterministic for a given fleet
state — seeded reproducibility holds across the whole tier.

Rejections carry a ``retry_after`` hint derived from the fleet's
queue-drain estimates (the minimum over machines of how long their
current backlog needs to drain at the observed per-request service
rate), not just per-machine breaker cooldowns — a caller that backs
off by the hint resubmits when *some* machine is plausibly open.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Union

from repro.errors import PlacementError
from repro.serve.resilience import KIND_CIRCUIT_OPEN, KIND_QUOTA


@dataclass
class SessionSpec:
    """What the router knows about a session before placing it."""

    name: str
    #: Estimated total service seconds (0.0 = unknown); feeds the
    #: least-loaded policy and the machine's pending-work accounting.
    est_seconds: float = 0.0
    #: Peak device-memory footprint the session will charge, in real
    #: (post-inflation) bytes; feeds the memory-fit policy.
    memory_bytes: int = 0
    weight: float = 1.0
    #: Lite sessions charge analytic costs without crypto state and do
    #: not consume a session-table slot, so capacity checks skip them.
    lite: bool = False


@dataclass
class MachineStatus:
    """One machine's placement-relevant state, snapshotted."""

    index: int
    name: str
    sessions: int            # full-crypto sessions admitted
    capacity: int            # session-table cap (max_tenants)
    lite_sessions: int = 0
    pending_seconds: float = 0.0   # estimated unserved work
    drain_seconds: float = 0.0     # backlog / observed service rate
    memory_committed: int = 0      # reserved + in-use device bytes
    memory_budget: int = 0         # machine VRAM (real bytes)
    backend: str = "hix"           # TEE backend (repro.backends)
    weight: float = 1.0
    draining: bool = False
    healthy: bool = True

    @property
    def memory_free(self) -> int:
        return max(self.memory_budget - self.memory_committed, 0)


class LeastLoadedPolicy:
    """Least estimated pending work; session count breaks ties."""

    name = "least-loaded"

    def select(self, spec: SessionSpec,
               candidates: Sequence[MachineStatus]
               ) -> Optional[MachineStatus]:
        return min(candidates,
                   key=lambda m: (m.pending_seconds,
                                  m.sessions + m.lite_sessions, m.index))


class QuotaPressurePolicy:
    """Lowest session-table occupancy fraction (quota headroom)."""

    name = "quota-pressure"

    def select(self, spec: SessionSpec,
               candidates: Sequence[MachineStatus]
               ) -> Optional[MachineStatus]:
        def pressure(m: MachineStatus):
            used = (m.sessions / m.capacity) if m.capacity else 1.0
            return (used, m.pending_seconds, m.index)
        return min(candidates, key=pressure)


class MemoryFitPolicy:
    """Best fit by free device memory: tightest slot that still fits."""

    name = "memory-fit"

    def select(self, spec: SessionSpec,
               candidates: Sequence[MachineStatus]
               ) -> Optional[MachineStatus]:
        fits = [m for m in candidates
                if m.memory_free >= spec.memory_bytes]
        if not fits:
            return None
        return min(fits, key=lambda m: (m.memory_free - spec.memory_bytes,
                                        m.index))


class WeightedHashPolicy:
    """Weighted rendezvous hashing: sticky, deterministic, spreadable.

    Each (session, machine) pair hashes to a uniform draw; the machine
    with the highest ``weight``-scaled draw wins.  A session name maps
    to the same machine for any fleet containing it — the stateless
    affinity a fleet front door wants — while weights shift the share
    of the keyspace each machine owns.  ``zlib.crc32`` keeps the draw
    independent of ``PYTHONHASHSEED``.
    """

    name = "weighted-hash"

    def select(self, spec: SessionSpec,
               candidates: Sequence[MachineStatus]
               ) -> Optional[MachineStatus]:
        def score(m: MachineStatus):
            draw = zlib.crc32(f"{spec.name}|{m.name}".encode("utf-8"))
            unit = (draw + 1) / (0xFFFFFFFF + 2)  # (0, 1) exclusive
            return (-(m.weight / -math.log(unit)), m.index)
        return min(candidates, key=score)


POLICIES = {
    policy.name: policy
    for policy in (LeastLoadedPolicy, QuotaPressurePolicy,
                   MemoryFitPolicy, WeightedHashPolicy)
}
POLICY_NAMES = tuple(sorted(POLICIES))


def make_policy(name: str):
    try:
        return POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown placement policy {name!r}; "
            f"choose from {', '.join(POLICY_NAMES)}") from None


@dataclass
class Placement:
    """The router's decision ledger entry for one admitted session."""

    spec: SessionSpec
    machine: int


class Router:
    """Admission + placement over a fleet's machine statuses."""

    def __init__(self, policy: Union[str, object] = "least-loaded") -> None:
        if isinstance(policy, str):
            policy = make_policy(policy)
        self.policy = policy
        self.placements: Dict[str, Placement] = {}

    @property
    def policy_name(self) -> str:
        return getattr(self.policy, "name", type(self.policy).__name__)

    @staticmethod
    def retry_after(statuses: Sequence[MachineStatus]) -> float:
        """Queue-drain hint: when the least-backlogged machine opens up."""
        drains = [m.drain_seconds for m in statuses]
        return min(drains) if drains else 0.0

    def place(self, spec: SessionSpec,
              statuses: Sequence[MachineStatus]) -> int:
        """Pick a machine index for *spec*, or raise PlacementError."""
        if spec.name in self.placements:
            raise PlacementError(
                f"session {spec.name!r} already placed on machine "
                f"{self.placements[spec.name].machine}")
        eligible = [m for m in statuses
                    if m.healthy and not m.draining]
        if not eligible:
            raise PlacementError(
                "no healthy machine available "
                f"({len(statuses)} draining/unhealthy)",
                retry_after=self.retry_after(statuses),
                error_kind=KIND_CIRCUIT_OPEN)
        if not spec.lite:
            eligible = [m for m in eligible if m.sessions < m.capacity]
            if not eligible:
                raise PlacementError(
                    f"every machine at its session capacity; "
                    f"cannot place {spec.name!r}",
                    retry_after=self.retry_after(statuses),
                    error_kind=KIND_QUOTA)
        chosen = self.policy.select(spec, eligible)
        if chosen is None:
            raise PlacementError(
                f"no machine fits {spec.name!r} "
                f"({spec.memory_bytes} bytes device memory)",
                retry_after=self.retry_after(statuses),
                error_kind=KIND_QUOTA)
        self.placements[spec.name] = Placement(spec=spec,
                                               machine=chosen.index)
        return chosen.index

    def forget(self, name: str) -> None:
        """Drop a placement (session ended or migrated away)."""
        self.placements.pop(name, None)

    def machine_of(self, name: str) -> Optional[int]:
        placement = self.placements.get(name)
        return placement.machine if placement is not None else None
