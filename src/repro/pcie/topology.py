"""Topology construction and firmware-style resource assignment.

The paper notes the system address map and routing registers "are
initialized by the BIOS at system boot time".  :func:`bios_assign_resources`
plays that role: it walks the tree, assigns every BAR (and expansion ROM)
an address inside the MMIO window, and programs bridge windows to cover
their children — all before any lockdown, exactly like real firmware.
"""

from __future__ import annotations

from typing import Iterable, Tuple

from repro.pcie.device import Bdf, PcieFunction
from repro.pcie.port import RootPort
from repro.pcie.root_complex import RootComplex

_ALIGN = 1 << 20  # 1 MiB minimum alignment for assigned regions


def _align_up(value: int, alignment: int) -> int:
    return (value + alignment - 1) & ~(alignment - 1)


def build_topology(mmio_base: int, mmio_size: int,
                   devices: Iterable[PcieFunction] = (),
                   allow_sizing_inquiry: bool = False
                   ) -> Tuple[RootComplex, RootPort]:
    """Build the canonical single-root-port tree used by the testbed.

    Mirrors the paper's prototype: one IOH3420-style root port at 00:01.0
    with the GPU (and any other endpoints) on its secondary bus 1.
    """
    root_complex = RootComplex(mmio_base, mmio_size,
                               allow_sizing_inquiry=allow_sizing_inquiry)
    port = RootPort(Bdf(0, 1, 0), secondary_bus=1)
    root_complex.add_port(port)
    for device in devices:
        port.attach(device)
    bios_assign_resources(root_complex)
    return root_complex, port


def build_multi_device_topology(mmio_base: int, mmio_size: int,
                                device_groups: Iterable[Iterable[PcieFunction]],
                                allow_sizing_inquiry: bool = False
                                ) -> Tuple[RootComplex, list]:
    """One root port per device group (e.g. a multi-GPU testbed).

    The paper's design covers "a single GPU or multi-GPU system without
    P2P connection across GPUs"; giving each GPU its own root port makes
    MMIO lockdown per-path: locking one GPU's route leaves the others'
    config space writable.
    """
    root_complex = RootComplex(mmio_base, mmio_size,
                               allow_sizing_inquiry=allow_sizing_inquiry)
    ports = []
    for index, devices in enumerate(device_groups, start=1):
        port = RootPort(Bdf(0, index, 0), secondary_bus=index)
        root_complex.add_port(port)
        for device in devices:
            port.attach(device)
        ports.append(port)
    bios_assign_resources(root_complex)
    return root_complex, ports


def bios_assign_resources(root_complex: RootComplex) -> None:
    """Assign BAR/ROM addresses and bridge windows (firmware's job).

    Idempotent: resources that already have addresses keep them, so a
    re-run after hot-plug only places the new device and widens windows.
    """
    cursor = root_complex.mmio_base
    limit = root_complex.mmio_base + root_complex.mmio_size
    # Never place new resources below anything already assigned.
    for port in root_complex.ports:
        for device in port.devices:
            for bar in device.config.bars.values():
                if bar.address:
                    cursor = max(cursor, bar.limit)
            if device.rom_size and device.config.expansion_rom_base:
                cursor = max(cursor,
                             device.config.expansion_rom_base + device.rom_size)
    def _align(value: int, size: int) -> int:
        return _align_up(value, max(size, _ALIGN))

    for port in root_complex.ports:
        port_base = min((bar.address
                         for device in port.devices
                         for bar in device.config.bars.values() if bar.address),
                        default=cursor)
        for device in port.direct_devices:
            for bar in sorted(device.config.bars.values(), key=lambda b: b.index):
                if bar.address:
                    continue
                alignment = max(bar.size, _ALIGN)
                cursor = _align_up(cursor, alignment)
                bar.address = cursor
                cursor += bar.size
            if device.rom_size and not device.config.expansion_rom_base:
                cursor = _align_up(cursor, _ALIGN)
                device.config.expansion_rom_base = cursor
                cursor += device.rom_size
        for switch in port.switches:
            if switch.config.memory_limit <= switch.config.memory_base:
                # Unprogrammed switch: place its whole subtree.
                cursor = switch.assign_windows(_align_up(cursor, _ALIGN),
                                               _align)
        cursor = _align_up(cursor, _ALIGN)
        port.config.set_window(port_base, max(cursor, port.config.memory_limit))
        if cursor > limit:
            raise ValueError(
                f"MMIO window exhausted: need {cursor - root_complex.mmio_base:#x}, "
                f"have {root_complex.mmio_size:#x}")
