"""Root ports / PCI-PCI bridges: one hop of the PCIe tree.

A root port forwards memory TLPs downstream only when the address falls
inside its programmed bridge memory window, and forwards config TLPs by
secondary/subordinate bus range — the two routing mechanisms a malicious
OS would retarget and that the MMIO lockdown freezes.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import UnsupportedRequest
from repro.pcie.config_space import Type1Config
from repro.pcie.device import Bdf, PcieFunction
from repro.pcie.switch import Switch
from repro.pcie.tlp import Tlp, TlpKind

VENDOR_INTEL = 0x8086
DEVICE_IOH3420 = 0x3420  # the root-port model the paper's QEMU prototype modified


class RootPort:
    """A type-1 bridge with endpoint functions on its secondary bus."""

    def __init__(self, bdf: Bdf, secondary_bus: int,
                 vendor_id: int = VENDOR_INTEL,
                 device_id: int = DEVICE_IOH3420) -> None:
        self.bdf = bdf
        self.config = Type1Config(vendor_id, device_id)
        self.config.primary_bus = bdf.bus
        self.config.secondary_bus = secondary_bus
        self.config.subordinate_bus = secondary_bus
        self._devices: Dict[Bdf, PcieFunction] = {}
        self._switches: List[Switch] = []
        #: Endpoint that claimed the last directly-routed memory TLP
        #: (None when it was forwarded to a switch) — lets the root
        #: complex cache the decoded route.
        self.last_routed_endpoint: Optional[PcieFunction] = None

    # -- topology -------------------------------------------------------------

    def attach(self, device: PcieFunction) -> None:
        if device.bdf.bus != self.config.secondary_bus:
            raise ValueError(
                f"device {device.bdf} not on secondary bus "
                f"{self.config.secondary_bus:#x}")
        if device.bdf in self._devices:
            raise ValueError(f"BDF {device.bdf} already attached")
        self._devices[device.bdf] = device

    def attach_switch(self, switch: Switch) -> None:
        """Hang a PCIe switch below this root port (multi-level tree)."""
        if switch.bdf.bus != self.config.secondary_bus:
            raise ValueError(
                f"switch upstream {switch.bdf} not on secondary bus "
                f"{self.config.secondary_bus:#x}")
        self._switches.append(switch)
        self.config.subordinate_bus = max(self.config.subordinate_bus,
                                          switch.config.subordinate_bus)

    def detach(self, bdf: Bdf) -> Optional[PcieFunction]:
        return self._devices.pop(bdf, None)

    @property
    def devices(self) -> List[PcieFunction]:
        """Every endpoint below this port (including behind switches)."""
        endpoints = list(self._devices.values())
        for switch in self._switches:
            endpoints.extend(switch.endpoints())
        return endpoints

    @property
    def direct_devices(self) -> List[PcieFunction]:
        """Endpoints attached straight to this port's secondary bus."""
        return list(self._devices.values())

    @property
    def switches(self) -> List[Switch]:
        return list(self._switches)

    def owns_bus(self, bus: int) -> bool:
        return self.config.secondary_bus <= bus <= self.config.subordinate_bus

    def has_direct(self, device: PcieFunction) -> bool:
        """True if *device* is currently attached straight to this port."""
        return self._devices.get(device.bdf) is device

    def find_function(self, bdf: Bdf) -> Optional[PcieFunction]:
        found = self._devices.get(bdf)
        if found is not None:
            return found
        for switch in self._switches:
            found = switch.find_function(bdf)
            if found is not None:
                return found
        return None

    def config_target(self, bdf: Bdf):
        """Config space of a bridge or endpoint at *bdf* below this port."""
        device = self._devices.get(bdf)
        if device is not None:
            return device.config
        for switch in self._switches:
            target = switch.config_target(bdf)
            if target is not None:
                return target
        return None

    def path_to(self, bdf: Bdf) -> Optional[List[str]]:
        """Bridge/endpoint BDFs from this port down to *bdf* (inclusive)."""
        if bdf in self._devices:
            return [str(self.bdf), str(bdf)]
        for switch in self._switches:
            below = switch.path_to(bdf)
            if below is not None:
                return [str(self.bdf)] + below
        return None

    # -- routing ----------------------------------------------------------------

    def route_mem(self, tlp: Tlp) -> bytes:
        """Forward a memory TLP downstream; raises if nothing claims it."""
        assert tlp.address is not None
        if not self.config.window_contains(tlp.address, max(tlp.length, 1)):
            raise UnsupportedRequest(
                f"root port {self.bdf}: {tlp.address:#x} outside bridge window "
                f"[{self.config.memory_base:#x}, {self.config.memory_limit:#x})")
        for device in self._devices.values():
            if device.claims_address(tlp.address, max(tlp.length, 1)):
                self.last_routed_endpoint = device
                if tlp.kind is TlpKind.MEM_READ:
                    return device.mem_read(tlp.address, tlp.length)
                device.mem_write(tlp.address, tlp.data or b"")
                return b""
        for switch in self._switches:
            if switch.config.window_contains(tlp.address, max(tlp.length, 1)):
                self.last_routed_endpoint = None
                return switch.route_mem(tlp)
        raise UnsupportedRequest(
            f"root port {self.bdf}: no device claims {tlp.address:#x}")

    def claims_mem(self, address: int, length: int = 1) -> bool:
        return self.config.window_contains(address, length)
