"""PCIe root complex with HIX's MMIO lockdown.

The root complex is the root of the device tree (paper Figure 2): it
claims the MMIO range in the system address map, turns CPU accesses into
memory TLPs routed down the bridge tree, and is the *only* path for
configuration transactions.  HIX's hardware change (Section 4.3.2) lives
here: once lockdown is enabled for a GPU, every config write that would
modify MMIO mapping or routing registers of any device on the path from
the root complex to that GPU is inspected — by target BDF and register
offset, as in the paper — and discarded.
"""

from __future__ import annotations

import hashlib
import logging
from typing import Iterator, List, Optional, Set, Tuple

from repro.errors import UnsupportedRequest
from repro.obs.tracer import STATE as _OBS
from repro.pcie.device import Bdf, PcieFunction
from repro.pcie.port import RootPort
from repro.pcie.tlp import Tlp, TlpKind


logger = logging.getLogger(__name__)


class RejectedWrite(Tuple):
    """(bdf, offset, value, requester) record of a discarded config write."""


class RootComplex:
    """Root of the PCIe tree; owner of the system's MMIO window."""

    def __init__(self, mmio_base: int, mmio_size: int,
                 allow_sizing_inquiry: bool = False) -> None:
        self.mmio_base = mmio_base
        self.mmio_size = mmio_size
        self.allow_sizing_inquiry = allow_sizing_inquiry
        self._ports: List[RootPort] = []
        self._locked_bdfs: Set[str] = set()
        self.rejected_config_writes: List[Tuple[str, int, int, str]] = []
        self.config_writes = 0
        self.config_reads = 0
        # Decoded-route cache for CPU MMIO: (config_writes stamp, port,
        # endpoint, bar) of the last successful memory route.  Every hit
        # is re-validated against the live bridge window and BAR decode,
        # and the stamp invalidates it on any config-space write (window
        # or BAR reprogramming), so it only short-circuits the tree and
        # BAR searches.
        self._mem_route_cache: Optional[Tuple[int, RootPort, PcieFunction]] = None
        self._mem_route_bar = None

    # -- topology -----------------------------------------------------------

    def add_port(self, port: RootPort) -> RootPort:
        if port.bdf.bus != 0:
            raise ValueError("root ports must live on bus 0")
        self._ports.append(port)
        return port

    @property
    def ports(self) -> List[RootPort]:
        return list(self._ports)

    def enumerate_functions(self) -> Iterator[Tuple[Bdf, PcieFunction]]:
        """Walk the tree, yielding endpoint functions with trusted attributes."""
        for port in self._ports:
            for device in port.devices:
                yield device.bdf, device

    def find_function(self, bdf: Bdf) -> Optional[PcieFunction]:
        for port in self._ports:
            device = port.find_function(bdf)
            if device is not None:
                return device
        return None

    def _port_for_bus(self, bus: int) -> Optional[RootPort]:
        for port in self._ports:
            if port.owns_bus(bus):
                return port
        return None

    def path_to(self, bdf: Bdf) -> List[str]:
        """BDFs of every bridge+function on the path root-complex -> *bdf*.

        With switches in the tree, the path includes the switch upstream
        and the downstream port leading to the device — the exact set of
        config spaces the MMIO lockdown freezes (Section 4.3.2).
        """
        port = self._port_for_bus(bdf.bus)
        if port is not None:
            path = port.path_to(bdf)
            if path is not None:
                return path
        raise UnsupportedRequest(f"no device at {bdf}")

    # -- MMIO lockdown (the HIX hardware change) ------------------------------

    def enable_lockdown(self, gpu_bdf: Bdf) -> List[str]:
        """Freeze MMIO mapping/routing registers on the path to *gpu_bdf*.

        Called by EGCREATE.  Returns the list of frozen BDFs.
        """
        path = self.path_to(gpu_bdf)
        self._locked_bdfs.update(path)
        logger.info("MMIO lockdown engaged for %s (frozen path: %s)",
                    gpu_bdf, " -> ".join(path))
        return path

    def lockdown_active_for(self, bdf: str) -> bool:
        return bdf in self._locked_bdfs

    @property
    def lockdown_enabled(self) -> bool:
        return bool(self._locked_bdfs)

    def clear_lockdown(self) -> None:
        """Reset at system cold boot only (Section 4.2.3)."""
        self._locked_bdfs.clear()

    def _config_target(self, bdf: Bdf):
        """Resolve a config TLP target: root port, switch bridge, or device."""
        for port in self._ports:
            if port.bdf == bdf:
                return port.config
        port = self._port_for_bus(bdf.bus)
        if port is not None:
            target = port.config_target(bdf)
            if target is not None:
                return target
        raise UnsupportedRequest(f"config access to absent function {bdf}")

    # -- configuration transactions -------------------------------------------

    def config_read(self, bdf: Bdf, offset: int, requester: str = "cpu") -> int:
        self.config_reads += 1
        return self._config_target(bdf).read(offset)

    def config_write(self, bdf: Bdf, offset: int, value: int,
                     requester: str = "cpu") -> bool:
        """Process a CfgWr TLP; returns False if lockdown discarded it."""
        self.config_writes += 1
        config = self._config_target(bdf)
        if str(bdf) in self._locked_bdfs and offset in config.routing_register_offsets():
            if not (self.allow_sizing_inquiry
                    and config.is_sizing_inquiry(offset, value)):
                # Paper: "the root complex simply discards it".
                self.rejected_config_writes.append(
                    (str(bdf), offset, value, requester))
                logger.warning(
                    "lockdown discarded CfgWr: bdf=%s offset=%#x value=%#x "
                    "requester=%s", bdf, offset, value, requester)
                return False
        config.write(offset, value)
        return True

    # -- memory transactions ----------------------------------------------------

    def route(self, tlp: Tlp) -> bytes:
        """Route a TLP from the CPU side into the fabric."""
        tracer = _OBS.tracer
        if tracer is None:
            return self._route(tlp)
        with tracer.span("pcie.route", "pcie", kind=tlp.kind.name,
                         requester=tlp.requester):
            return self._route(tlp)

    def _route(self, tlp: Tlp) -> bytes:
        if tlp.kind is TlpKind.CFG_READ:
            assert tlp.target_bdf is not None and tlp.register_offset is not None
            value = self.config_read(Bdf.parse(tlp.target_bdf),
                                     tlp.register_offset, tlp.requester)
            return value.to_bytes(4, "little")
        if tlp.kind is TlpKind.CFG_WRITE:
            assert (tlp.target_bdf is not None and tlp.register_offset is not None
                    and tlp.value is not None)
            self.config_write(Bdf.parse(tlp.target_bdf), tlp.register_offset,
                              tlp.value, tlp.requester)
            return b""
        assert tlp.address is not None
        is_read = tlp.kind is TlpKind.MEM_READ
        hit, result = self._route_mem_cached(
            tlp.address, tlp.length if is_read else (tlp.data or b""), is_read)
        if hit:
            return result
        for port in self._ports:
            if port.claims_mem(tlp.address, max(tlp.length, 1)):
                result = port.route_mem(tlp)
                device = port.last_routed_endpoint
                if device is not None:
                    self._mem_route_cache = (self.config_writes, port, device)
                    self._mem_route_bar = None
                return result
        raise UnsupportedRequest(
            f"no root port claims memory TLP at {tlp.address:#x}")

    def _route_mem_cached(self, address: int, payload, is_read: bool
                          ) -> Tuple[bool, bytes]:
        """Try the decoded-route cache; returns (hit, read_result).

        A hit requires the cache stamp to match (no config write since),
        the endpoint to still hang directly off the cached port, the
        port's live bridge window to contain the address, and the
        endpoint's live BAR decode to claim it — the same checks the
        full tree walk performs, minus the search.
        """
        cached = self._mem_route_cache
        if cached is None:
            return False, b""
        stamp, port, device = cached
        length = payload if is_read else len(payload)
        span = length if length > 0 else 1
        if (stamp != self.config_writes
                or not port.has_direct(device)
                or not port.config.window_contains(address, span)):
            return False, b""
        bar = self._mem_route_bar
        if bar is not None and bar.contains(address, span):
            offset = address - bar.address
        else:
            # Different BAR of the same endpoint (or first hit): resolve
            # via the full live decode and remember the winning BAR.
            claimed = device.claim(address, span)
            if claimed is None:
                return False, b""
            bar, offset = claimed
            self._mem_route_bar = bar
        if is_read:
            return True, device.bar_read(bar.index, offset, length)
        device.bar_write(bar.index, offset, payload)
        return True, b""

    # -- AddressMap window handlers (CPU loads/stores to the MMIO hole) --------

    def window_read(self, offset: int, length: int) -> bytes:
        hit, result = self._route_mem_cached(self.mmio_base + offset,
                                             length, True)
        if hit:
            return result
        return self.route(Tlp.mem_read(self.mmio_base + offset, length))

    def window_write(self, offset: int, data: bytes) -> None:
        hit, _ = self._route_mem_cached(self.mmio_base + offset, data, False)
        if not hit:
            self.route(Tlp.mem_write(self.mmio_base + offset, data))

    # -- measurement -------------------------------------------------------------

    def measure_routing_config(self) -> bytes:
        """SHA-256 over all routing-relevant config registers (Section 4.3.2).

        The GPU enclave folds this into its measurement so an attested
        enclave proves the MMIO map it locked down.
        """
        digest = hashlib.sha256()
        for port in sorted(self._ports, key=lambda p: p.bdf):
            digest.update(str(port.bdf).encode())
            for reg in sorted(port.config.routing_register_offsets()):
                digest.update(reg.to_bytes(2, "big"))
                digest.update(port.config.read(reg).to_bytes(8, "big"))
            for device in sorted(port.devices, key=lambda d: d.bdf):
                digest.update(str(device.bdf).encode())
                for reg in sorted(device.config.routing_register_offsets()):
                    digest.update(reg.to_bytes(2, "big"))
                    digest.update(device.config.read(reg).to_bytes(8, "big"))
        return digest.digest()
