"""PCIe switches: multi-level trees below a root port.

A switch is an upstream bridge plus a set of downstream bridges, each
leading to an endpoint (or another switch).  HIX's MMIO lockdown must
freeze "the MMIO configuration registers of all PCIe devices between
the PCIe root complex and GPU" (Section 4.3.2) — with a switch in the
path, that set includes the switch's upstream and the one downstream
port leading to the GPU, while sibling downstream ports stay writable.
"""

from __future__ import annotations

from typing import List, Optional, Union

from repro.errors import UnsupportedRequest
from repro.pcie.config_space import Type1Config
from repro.pcie.device import Bdf, PcieFunction
from repro.pcie.tlp import Tlp, TlpKind

VENDOR_PLX = 0x10B5
DEVICE_PEX8747 = 0x8747  # a common Gen3 switch of the GTX-580 era

Child = Union[PcieFunction, "Switch"]


class SwitchPort:
    """One downstream bridge of a switch."""

    def __init__(self, bdf: Bdf, secondary_bus: int) -> None:
        self.bdf = bdf
        self.config = Type1Config(VENDOR_PLX, DEVICE_PEX8747)
        self.config.primary_bus = bdf.bus
        self.config.secondary_bus = secondary_bus
        self.config.subordinate_bus = secondary_bus
        self.child: Optional[Child] = None

    def attach(self, child: Child) -> None:
        if self.child is not None:
            raise ValueError(f"downstream port {self.bdf} already populated")
        self.child = child


class Switch:
    """Upstream bridge + downstream bridges (a PEX-style fan-out)."""

    def __init__(self, upstream_bdf: Bdf, upstream_secondary_bus: int,
                 downstream_count: int, first_downstream_bus: int) -> None:
        self.bdf = upstream_bdf
        self.config = Type1Config(VENDOR_PLX, DEVICE_PEX8747)
        self.config.primary_bus = upstream_bdf.bus
        self.config.secondary_bus = upstream_secondary_bus
        self.downstream: List[SwitchPort] = []
        for index in range(downstream_count):
            port = SwitchPort(Bdf(upstream_secondary_bus, index, 0),
                              first_downstream_bus + index)
            self.downstream.append(port)
        self.config.subordinate_bus = (first_downstream_bus
                                       + downstream_count - 1)

    # -- enumeration -----------------------------------------------------------

    def all_functions(self):
        """Yield (bdf, config_owner) for every bridge + endpoint below."""
        yield self.bdf, self
        for port in self.downstream:
            yield port.bdf, port
            if isinstance(port.child, Switch):
                yield from port.child.all_functions()
            elif port.child is not None:
                yield port.child.bdf, port.child

    def endpoints(self):
        for port in self.downstream:
            if isinstance(port.child, Switch):
                yield from port.child.endpoints()
            elif port.child is not None:
                yield port.child

    def owns_bus(self, bus: int) -> bool:
        return self.config.secondary_bus <= bus <= self.config.subordinate_bus

    def find_function(self, bdf: Bdf) -> Optional[PcieFunction]:
        for endpoint in self.endpoints():
            if endpoint.bdf == bdf:
                return endpoint
        return None

    def config_target(self, bdf: Bdf):
        """Resolve a config access to a bridge or endpoint config space."""
        for owner_bdf, owner in self.all_functions():
            if owner_bdf == bdf:
                return owner.config
        return None

    # -- routing -------------------------------------------------------------------

    def path_to(self, bdf: Bdf) -> Optional[List[str]]:
        """BDFs of every function from this switch down to *bdf*."""
        for port in self.downstream:
            if isinstance(port.child, Switch):
                below = port.child.path_to(bdf)
                if below is not None:
                    return [str(self.bdf), str(port.bdf)] + below
            elif port.child is not None and port.child.bdf == bdf:
                return [str(self.bdf), str(port.bdf), str(bdf)]
        return None

    def route_mem(self, tlp: Tlp) -> bytes:
        assert tlp.address is not None
        if not self.config.window_contains(tlp.address, max(tlp.length, 1)):
            raise UnsupportedRequest(
                f"switch {self.bdf}: {tlp.address:#x} outside upstream window")
        for port in self.downstream:
            if not port.config.window_contains(tlp.address,
                                               max(tlp.length, 1)):
                continue
            child = port.child
            if isinstance(child, Switch):
                return child.route_mem(tlp)
            if child is not None and child.claims_address(
                    tlp.address, max(tlp.length, 1)):
                if tlp.kind is TlpKind.MEM_READ:
                    return child.mem_read(tlp.address, tlp.length)
                child.mem_write(tlp.address, tlp.data or b"")
                return b""
        raise UnsupportedRequest(
            f"switch {self.bdf}: no downstream claims {tlp.address:#x}")

    def assign_windows(self, cursor: int, align) -> int:
        """Firmware pass: place children, then set bridge windows."""
        base = cursor
        for port in self.downstream:
            port_base = cursor
            child = port.child
            if isinstance(child, Switch):
                cursor = child.assign_windows(cursor, align)
            elif child is not None:
                for bar in sorted(child.config.bars.values(),
                                  key=lambda b: b.index):
                    if not bar.address:
                        cursor = align(cursor, bar.size)
                        bar.address = cursor
                        cursor += bar.size
                if child.rom_size and not child.config.expansion_rom_base:
                    cursor = align(cursor, 1 << 20)
                    child.config.expansion_rom_base = cursor
                    cursor += child.rom_size
            cursor = align(cursor, 1 << 20)
            port.config.set_window(port_base, cursor)
        self.config.set_window(base, cursor)
        return cursor
