"""PCIe configuration space: headers, BARs, bridge windows.

Register offsets follow the PCI Local Bus Specification 3.0 layout the
paper cites.  Two details matter to HIX:

* **BAR writes** change where a device's MMIO lands in the system
  address map — exactly what the MMIO lockdown must freeze.
* **Sizing inquiry** (writing all 1s to a BAR and reading back the size
  mask) is the one legitimate BAR write the spec requires; the paper's
  Section 5.6 notes lockdown breaks it unless the root complex makes an
  exception, which we implement behind a flag.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

# Standard header register offsets (dword-aligned).
REG_VENDOR_DEVICE = 0x00
REG_COMMAND_STATUS = 0x04
REG_CLASS_REVISION = 0x08
REG_HEADER_TYPE = 0x0C
REG_BAR0 = 0x10
REG_BUS_NUMBERS = 0x18      # type 1: primary/secondary/subordinate
REG_MEMORY_WINDOW = 0x20    # type 1: memory base/limit
REG_PREFETCH_WINDOW = 0x24  # type 1: prefetchable base/limit
REG_EXPANSION_ROM = 0x30    # type 0

CLASS_DISPLAY_VGA = 0x030000
CLASS_BRIDGE_PCI = 0x060400
CLASS_PROCESSING_ACCEL = 0x120000  # PCI-SIG processing accelerator

_BAR_MEM_64 = 0x4
_BAR_PREFETCH = 0x8
_ADDR_MASK_64 = (1 << 64) - 1


@dataclass
class Bar:
    """One memory BAR: a relocatable MMIO window of fixed power-of-2 size."""

    index: int
    size: int
    is_64bit: bool = True
    prefetchable: bool = False
    address: int = 0
    _sizing: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        if self.size and (self.size & (self.size - 1)):
            raise ValueError(f"BAR size must be a power of two, got {self.size:#x}")

    @property
    def limit(self) -> int:
        return self.address + self.size

    def contains(self, addr: int, length: int = 1) -> bool:
        return (self.size > 0 and self.address > 0
                and self.address <= addr and addr + length <= self.limit)

    def read_value(self) -> int:
        """Raw register value: size mask while sizing, else address+flags."""
        if self._sizing:
            value = (~(self.size - 1)) & _ADDR_MASK_64
        else:
            value = self.address
        flags = (_BAR_MEM_64 if self.is_64bit else 0) | (
            _BAR_PREFETCH if self.prefetchable else 0)
        return (value & ~0xF) | flags

    def write_value(self, value: int) -> None:
        """Program the BAR; an all-1s write latches the sizing inquiry.

        Both 32-bit (0xFFFFFFF0) and 64-bit all-ones probes are accepted,
        matching how software sizes 32- and 64-bit BARs.
        """
        if value | 0xF in (0xFFFFFFFF, _ADDR_MASK_64):
            self._sizing = True
            return
        self._sizing = False
        self.address = value & ~0xF

    @property
    def is_sizing_write(self) -> bool:
        return self._sizing


class ConfigSpace:
    """Common configuration-space behaviour for type 0 and type 1 headers."""

    header_type: int = 0

    def __init__(self, vendor_id: int, device_id: int, class_code: int) -> None:
        self.vendor_id = vendor_id
        self.device_id = device_id
        self.class_code = class_code
        self.command = 0
        self.bars: Dict[int, Bar] = {}
        self._scratch: Dict[int, int] = {}

    def add_bar(self, bar: Bar) -> Bar:
        if bar.index in self.bars:
            raise ValueError(f"BAR{bar.index} already present")
        self.bars[bar.index] = bar
        return bar

    def bar_offset(self, index: int) -> int:
        return REG_BAR0 + 4 * index  # 64-bit BARs consume two dwords

    def _bar_at_offset(self, offset: int) -> Optional[Bar]:
        if offset < REG_BAR0:
            return None
        index = (offset - REG_BAR0) // 4
        return self.bars.get(index)

    # Register names whose modification affects MMIO mapping/routing: the
    # root complex's lockdown filter consults this.
    def routing_register_offsets(self) -> List[int]:
        return [self.bar_offset(i) for i in self.bars]

    def read(self, offset: int) -> int:
        if offset == REG_VENDOR_DEVICE:
            return (self.device_id << 16) | self.vendor_id
        if offset == REG_COMMAND_STATUS:
            return self.command
        if offset == REG_CLASS_REVISION:
            return self.class_code << 8
        if offset == REG_HEADER_TYPE:
            return self.header_type << 16
        bar = self._bar_at_offset(offset)
        if bar is not None:
            return bar.read_value() & 0xFFFFFFFF
        return self._scratch.get(offset, 0)

    def write(self, offset: int, value: int) -> None:
        if offset == REG_COMMAND_STATUS:
            self.command = value & 0xFFFF
            return
        bar = self._bar_at_offset(offset)
        if bar is not None:
            bar.write_value(value)
            return
        self._scratch[offset] = value

    def is_sizing_inquiry(self, offset: int, value: int) -> bool:
        """True if this write is the spec's all-1s BAR sizing probe."""
        return (self._bar_at_offset(offset) is not None
                and value & ~0xF == 0xFFFFFFF0)


class Type0Config(ConfigSpace):
    """Endpoint configuration header (devices: GPU, NIC, ...)."""

    header_type = 0

    def __init__(self, vendor_id: int, device_id: int, class_code: int) -> None:
        super().__init__(vendor_id, device_id, class_code)
        self.expansion_rom_base = 0

    def routing_register_offsets(self) -> List[int]:
        return super().routing_register_offsets() + [REG_EXPANSION_ROM]

    def read(self, offset: int) -> int:
        if offset == REG_EXPANSION_ROM:
            return self.expansion_rom_base
        return super().read(offset)

    def write(self, offset: int, value: int) -> None:
        if offset == REG_EXPANSION_ROM:
            self.expansion_rom_base = value & ~0x7FF
            return
        super().write(offset, value)


class Type1Config(ConfigSpace):
    """PCI-PCI bridge header (root ports, switches)."""

    header_type = 1

    def __init__(self, vendor_id: int, device_id: int) -> None:
        super().__init__(vendor_id, device_id, CLASS_BRIDGE_PCI)
        self.primary_bus = 0
        self.secondary_bus = 0
        self.subordinate_bus = 0
        self.memory_base = 0
        self.memory_limit = 0

    def routing_register_offsets(self) -> List[int]:
        return (super().routing_register_offsets()
                + [REG_BUS_NUMBERS, REG_MEMORY_WINDOW, REG_PREFETCH_WINDOW])

    def window_contains(self, addr: int, length: int = 1) -> bool:
        return (self.memory_limit > self.memory_base
                and self.memory_base <= addr
                and addr + length <= self.memory_limit)

    def read(self, offset: int) -> int:
        if offset == REG_BUS_NUMBERS:
            return (self.subordinate_bus << 16 | self.secondary_bus << 8
                    | self.primary_bus)
        if offset == REG_MEMORY_WINDOW:
            # Real hardware packs base/limit into 16-bit fields; the model
            # keeps full-width shadow values and reports the packed form.
            return ((self.memory_limit >> 16) << 16) | (self.memory_base >> 16)
        return super().read(offset)

    def write(self, offset: int, value: int) -> None:
        if offset == REG_BUS_NUMBERS:
            self.primary_bus = value & 0xFF
            self.secondary_bus = (value >> 8) & 0xFF
            self.subordinate_bus = (value >> 16) & 0xFF
            return
        if offset == REG_MEMORY_WINDOW:
            self.memory_base = (value & 0xFFFF) << 16
            self.memory_limit = (value >> 16) << 16
            return
        super().write(offset, value)

    def set_window(self, base: int, limit: int) -> None:
        self.memory_base = base
        self.memory_limit = limit
