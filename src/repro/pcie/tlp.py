"""Transaction-layer packets (TLPs).

Only the fields the routing and lockdown logic inspect are modeled:
memory requests carry a physical address and are *address-routed*;
configuration requests carry a target BDF and register offset and are
*ID-routed*.  The root complex's lockdown filter works exactly the way
the paper describes — "by inspecting the target device number and
register offset in the PCIe configuration transaction packet".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class TlpKind(enum.Enum):
    MEM_READ = "MRd"
    MEM_WRITE = "MWr"
    CFG_READ = "CfgRd"
    CFG_WRITE = "CfgWr"


@dataclass
class Tlp:
    """One transaction-layer packet."""

    kind: TlpKind
    address: Optional[int] = None     # memory requests
    length: int = 0                   # bytes, memory reads
    data: Optional[bytes] = None      # writes
    target_bdf: Optional[str] = None  # config requests
    register_offset: Optional[int] = None
    value: Optional[int] = None       # config writes
    requester: str = "cpu"

    def __post_init__(self) -> None:
        if self.kind in (TlpKind.MEM_READ, TlpKind.MEM_WRITE):
            if self.address is None:
                raise ValueError(f"{self.kind.value} TLP requires an address")
            if self.kind is TlpKind.MEM_WRITE and self.data is None:
                raise ValueError("MWr TLP requires data")
        else:
            if self.target_bdf is None or self.register_offset is None:
                raise ValueError(f"{self.kind.value} TLP requires BDF and offset")
            if self.kind is TlpKind.CFG_WRITE and self.value is None:
                raise ValueError("CfgWr TLP requires a value")

    @classmethod
    def mem_read(cls, address: int, length: int, requester: str = "cpu") -> "Tlp":
        return cls(TlpKind.MEM_READ, address=address, length=length,
                   requester=requester)

    @classmethod
    def mem_write(cls, address: int, data: bytes, requester: str = "cpu") -> "Tlp":
        return cls(TlpKind.MEM_WRITE, address=address, data=data,
                   length=len(data), requester=requester)

    @classmethod
    def cfg_read(cls, bdf: str, offset: int, requester: str = "cpu") -> "Tlp":
        return cls(TlpKind.CFG_READ, target_bdf=bdf, register_offset=offset,
                   requester=requester)

    @classmethod
    def cfg_write(cls, bdf: str, offset: int, value: int,
                  requester: str = "cpu") -> "Tlp":
        return cls(TlpKind.CFG_WRITE, target_bdf=bdf, register_offset=offset,
                   value=value, requester=requester)
