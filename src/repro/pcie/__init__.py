"""PCI Express interconnect model.

Implements the pieces of the PCIe system architecture that HIX touches
(paper Sections 2.2 and 4.3.2): per-function configuration spaces with
Base Address Registers, transaction-layer packets, address-routed memory
transactions through a bridge tree, ID-routed configuration transactions,
and — the HIX hardware change — the root complex's **MMIO lockdown**
filter that discards config writes which would alter MMIO mapping or
routing on the path to a protected GPU.
"""

from repro.pcie.config_space import Bar, ConfigSpace, Type0Config, Type1Config
from repro.pcie.device import Bdf, PcieFunction
from repro.pcie.port import RootPort
from repro.pcie.root_complex import RootComplex
from repro.pcie.tlp import Tlp, TlpKind
from repro.pcie.topology import bios_assign_resources, build_topology

__all__ = [
    "Bar",
    "ConfigSpace",
    "Type0Config",
    "Type1Config",
    "Bdf",
    "PcieFunction",
    "RootPort",
    "RootComplex",
    "Tlp",
    "TlpKind",
    "build_topology",
    "bios_assign_resources",
]
