"""PCIe endpoint functions and BDF addressing."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import UnsupportedRequest
from repro.pcie.config_space import Bar, Type0Config


@dataclass(frozen=True, order=True)
class Bdf:
    """Bus/Device/Function address of a PCIe function."""

    bus: int
    device: int
    function: int = 0

    def __post_init__(self) -> None:
        if not (0 <= self.bus < 256 and 0 <= self.device < 32
                and 0 <= self.function < 8):
            raise ValueError(f"invalid BDF {self.bus}:{self.device}.{self.function}")

    def __str__(self) -> str:
        return f"{self.bus:02x}:{self.device:02x}.{self.function}"

    @classmethod
    def parse(cls, text: str) -> "Bdf":
        bus_part, rest = text.split(":")
        dev_part, fn_part = rest.split(".")
        return cls(int(bus_part, 16), int(dev_part, 16), int(fn_part, 16))


class PcieFunction:
    """Base class for endpoint devices attached to the fabric.

    Subclasses (the GPU, the adversary's emulated GPU, ...) implement
    :meth:`bar_read` / :meth:`bar_write` to give their BARs behaviour.
    ``is_physical`` is the trusted hardware attribute the root complex
    reports during EGCREATE's real-GPU check ("the trusted PCIe root
    complex retrieves only the real devices attributes", Section 5.5).
    """

    is_physical = True
    rom_size = 0  # expansion ROM aperture size in bytes (0 = none)

    def __init__(self, bdf: Bdf, vendor_id: int, device_id: int,
                 class_code: int) -> None:
        self.bdf = bdf
        self.config = Type0Config(vendor_id, device_id, class_code)

    def _rom_claims(self, address: int, length: int) -> bool:
        base = self.config.expansion_rom_base
        return (self.rom_size > 0 and base > 0
                and base <= address and address + length <= base + self.rom_size)

    def claims_address(self, address: int, length: int = 1) -> bool:
        """True if any programmed BAR or the expansion ROM claims the range."""
        return self.claim(address, length) is not None or self._rom_claims(
            address, length)

    # -- BAR decode -----------------------------------------------------------

    def claim(self, address: int, length: int) -> Optional[Tuple[Bar, int]]:
        """Return (bar, offset_into_bar) if a programmed BAR claims the range."""
        for bar in self.config.bars.values():
            if bar.contains(address, length):
                return bar, address - bar.address
        return None

    def mem_read(self, address: int, length: int) -> bytes:
        claimed = self.claim(address, length)
        if claimed is None:
            if self._rom_claims(address, length):
                return self.expansion_rom_read(
                    address - self.config.expansion_rom_base, length)
            raise UnsupportedRequest(
                f"{self.bdf}: no BAR claims read at {address:#x}")
        bar, offset = claimed
        return self.bar_read(bar.index, offset, length)

    def mem_write(self, address: int, data: bytes) -> None:
        claimed = self.claim(address, len(data))
        if claimed is None:
            raise UnsupportedRequest(
                f"{self.bdf}: no BAR claims write at {address:#x}")
        bar, offset = claimed
        self.bar_write(bar.index, offset, data)

    # -- device behaviour (overridden by concrete devices) --------------------

    def bar_read(self, bar_index: int, offset: int, length: int) -> bytes:
        raise UnsupportedRequest(
            f"{self.bdf}: BAR{bar_index} has no read behaviour")

    def bar_write(self, bar_index: int, offset: int, data: bytes) -> None:
        raise UnsupportedRequest(
            f"{self.bdf}: BAR{bar_index} has no write behaviour")

    def expansion_rom_read(self, offset: int, length: int) -> bytes:
        raise UnsupportedRequest(f"{self.bdf}: no expansion ROM")

    def __repr__(self) -> str:
        return (f"<{type(self).__name__} {self.bdf} "
                f"{self.config.vendor_id:04x}:{self.config.device_id:04x}>")
