"""Figure 6: matrix add / multiply execution time, Gdev vs HIX.

Paper reference points: matrix addition is crypto-bound (about 2.5x
slower under HIX across sizes), matrix multiplication is compute-bound
(+6.34% at 11264x11264).
"""

import pytest

from repro.evalkit.figures import figure6

INFLATION = 256.0


@pytest.mark.benchmark(group="figure6")
def test_figure6(benchmark, publish):
    panels = benchmark.pedantic(figure6, kwargs={"inflation": INFLATION},
                                rounds=1, iterations=1)
    text = panels["add"].render() + "\n\n" + panels["mul"].render()
    publish("figure6", text,
            data={key: panel.to_dict() for key, panel in panels.items()})

    add, mul = panels["add"], panels["mul"]
    # Shape assertions (the reproduction's acceptance criteria).
    assert add.series["slowdown_x"][-1] > 2.5      # add: crypto-bound
    avg_add = sum(add.series["slowdown_x"]) / len(add.series["slowdown_x"])
    assert 1.8 < avg_add < 3.2                     # paper: ~2.5x
    assert mul.series["slowdown_x"][-1] < 1.10     # mul@11264: paper +6.34%
    # Crossover structure: overhead decreases with size for mul,
    # increases for add.
    assert mul.series["slowdown_x"][0] > mul.series["slowdown_x"][-1]
    assert add.series["slowdown_x"][0] < add.series["slowdown_x"][-1]
