"""Backend sealed-path micro-benchmarks: wall-clock per TEE backend.

One number per backend for the same operation — a 64 KiB sealed
roundtrip (HtoD then DtoH through a live attested session) — so a
change that slows one backend's crypto or protocol path shows up
against the other as well as against its own baseline.  Session
establishment is measured separately: it is where the two designs
differ most (SGX local attestation + 3-party DH vs certificate chain
+ signed report + 2-party DH).
"""

import pytest

from repro.system import Machine, MachineConfig

PAYLOAD = bytes(range(256)) * 256   # 64 KiB
BACKENDS = ("hix", "gpucc")


def _session(backend):
    machine = Machine(MachineConfig(backend=backend))
    service = machine.boot_secure()
    api = machine.secure_session(service, name="bench")
    api.cuCtxCreate()
    return api


@pytest.mark.benchmark(group="backends")
@pytest.mark.parametrize("backend", BACKENDS)
def test_perf_sealed_64k_roundtrip(benchmark, backend):
    api = _session(backend)
    handle = api.cuMemAlloc(len(PAYLOAD))

    def run():
        api.cuMemcpyHtoD(handle, PAYLOAD)
        out = api.cuMemcpyDtoH(handle, len(PAYLOAD))
        assert bytes(out[:len(PAYLOAD)]) == PAYLOAD

    benchmark(run)


@pytest.mark.benchmark(group="backends")
@pytest.mark.parametrize("backend", BACKENDS)
def test_perf_session_establishment(benchmark, backend):
    def run():
        api = _session(backend)
        api.cuCtxDestroy()

    benchmark.pedantic(run, rounds=3, iterations=1)
