"""Serving-layer micro-benchmarks: wall-clock cost of multiplexing.

Two layers are measured separately: the pure virtual-time scheduling
core (no machine, no crypto — just the event loop and a scheduler), and
a full serving run where every request travels the sealed path.  High
inflation keeps the real byte volume small so the full run measures
serving overhead rather than AEAD throughput (which
``bench_simulator_perf`` covers).
"""

import pytest

from repro.core.multiuser import Segment
from repro.serve.scheduler import DeficitFairScheduler, FifoScheduler
from repro.serve.timeline import schedule_segments

INFLATION = 8192.0


def _users(num_users: int, phases: int = 50):
    stream = []
    for index in range(phases):
        stream.append(Segment("host", 100e-6 + index * 1e-6, "h"))
        stream.append(Segment("gpu", 200e-6 + index * 2e-6, "g"))
    return [list(stream) for _ in range(num_users)]


@pytest.mark.benchmark(group="serve")
def test_perf_multiplex_core_fifo(benchmark):
    users = _users(8)
    benchmark(schedule_segments, users, FifoScheduler(), 120e-6)


@pytest.mark.benchmark(group="serve")
def test_perf_multiplex_core_fair(benchmark):
    users = _users(8)

    def run():
        scheduler = DeficitFairScheduler(600e-6)
        return schedule_segments(users, scheduler, 120e-6)

    benchmark(run)


@pytest.mark.benchmark(group="serve")
def test_perf_serve_engine_two_tenants(benchmark):
    """Full path: 2 tenants x nn through attested sealed sessions."""
    from repro.evalkit.serve_sweep import serve_run
    from repro.workloads import rodinia_workloads

    workload = {w.name: w for w in rodinia_workloads()}["nn"]

    def run():
        report = serve_run(workload, 2, scheduler="fair",
                           inflation=INFLATION)
        assert all(t.served == t.submitted for t in report.tenants)
        return report

    benchmark.pedantic(run, rounds=3, iterations=1)
