"""Tables 1-5: regenerate every table the paper prints.

Tables 1-3 are structural (cross-checked against the live machine);
Tables 4 and 5 carry the experiment definitions the figures consume.
"""

import pytest

from repro.evalkit.tables import table1, table2, table3, table4, table5


@pytest.mark.benchmark(group="tables")
def test_table1(benchmark, publish):
    data = benchmark.pedantic(table1, rounds=1, iterations=1)
    publish("table1", data.render())
    assert len(data.rows) == 6  # the paper's six changed components


@pytest.mark.benchmark(group="tables")
def test_table2(benchmark, publish):
    data = benchmark.pedantic(table2, rounds=1, iterations=1)
    publish("table2", data.render())
    surfaces = {row[1] for row in data.rows}
    assert any("MMIO" in s for s in surfaces)
    assert any("DMA" in s for s in surfaces)


@pytest.mark.benchmark(group="tables")
def test_table3(benchmark, publish):
    data = benchmark.pedantic(table3, rounds=1, iterations=1)
    publish("table3", data.render())
    text = data.render()
    assert "GTX 580" in text and "i7 6700" in text


@pytest.mark.benchmark(group="tables")
def test_table4(benchmark, publish):
    data = benchmark.pedantic(table4, rounds=1, iterations=1)
    publish("table4", data.render())
    totals = [row[3] for row in data.rows]
    assert totals == ["48.00MB", "192.00MB", "768.00MB", "1452.00MB"]


@pytest.mark.benchmark(group="tables")
def test_table5(benchmark, publish):
    data = benchmark.pedantic(table5, rounds=1, iterations=1)
    publish("table5", data.render())
    assert len(data.rows) == 9
    text = data.render()
    for code in ("BP", "BFS", "GS", "HS", "LUD", "NW", "NN", "PF", "SRAD"):
        assert code in text
