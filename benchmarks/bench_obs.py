"""Observability micro-benchmarks: the cost of tracing, on and off.

The tracer's contract is *zero-cost when disabled*: every instrumented
hot site guards on one attribute load and one branch.  These benchmarks
pin that contract in the perf gate — the disabled-tracer HIX roundtrip
must track ``bench_simulator_perf``'s equivalent, the disabled span
helper must stay at branch-cost, and the enabled paths must stay cheap
enough that profiling runs remain practical.
"""

import pytest

from repro import obs
from repro.obs.export import chrome_trace
from repro.obs.tracer import SpanTracer
from repro.sim.clock import SimClock


@pytest.fixture(autouse=True)
def _tracer_state():
    """Every benchmark leaves the process tracer the way it found it."""
    previous = obs.set_tracer(None)
    yield
    obs.set_tracer(previous)


def _hix_machine():
    from repro.system import Machine, MachineConfig
    machine = Machine(MachineConfig())
    service = machine.boot_hix()
    api = machine.hix_session(service, "bench").cuCtxCreate()
    buf = api.cuMemAlloc(64 * 1024)
    payload = b"\xab" * (64 * 1024)
    return machine, api, buf, payload


@pytest.mark.benchmark(group="obs")
def test_perf_hix_roundtrip_tracer_disabled(benchmark):
    """Full instrumented stack with no tracer: the guard-only overhead."""
    _machine, api, buf, payload = _hix_machine()

    def run():
        api.cuMemcpyHtoD(buf, payload)
        return api.cuMemcpyDtoH(buf, len(payload))

    assert benchmark(run) == payload


@pytest.mark.benchmark(group="obs")
def test_perf_hix_roundtrip_tracer_enabled(benchmark):
    """Same roundtrip with spans + charge leaves recorded."""
    machine, api, buf, payload = _hix_machine()
    tracer = obs.enable(machine.clock)

    def run():
        tracer.clear()
        api.cuMemcpyHtoD(buf, payload)
        return api.cuMemcpyDtoH(buf, len(payload))

    assert benchmark(run) == payload
    tracer.detach()


@pytest.mark.benchmark(group="obs")
def test_perf_span_helper_disabled(benchmark):
    """obs.span() with no tracer: one load + branch, NULL_SPAN reuse."""
    def run():
        for _ in range(1000):
            with obs.span("op", "bench"):
                pass
        return True

    assert benchmark(run)


@pytest.mark.benchmark(group="obs")
def test_perf_span_tree_enabled(benchmark):
    """1000 nested spans against a live clock-bound tracer."""
    clock = SimClock()
    tracer = SpanTracer()
    tracer.bind_clock(clock)

    def run():
        tracer.clear()
        with tracer.span("root", "bench"):
            for _ in range(1000):
                with tracer.span("child", "bench", k=1):
                    pass
        return len(tracer.roots)

    assert benchmark(run) == 1


@pytest.mark.benchmark(group="obs")
def test_perf_chrome_export_1k_spans(benchmark):
    tracer = SpanTracer()
    with tracer.span("root", "bench", tenant="t0"):
        for index in range(1000):
            tracer.event("leaf", "gpu", float(index), 0.5)
    roots = list(tracer.roots)

    def run():
        return len(chrome_trace(roots)["traceEvents"])

    assert benchmark(run) > 1000
