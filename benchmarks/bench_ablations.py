"""Ablation benchmarks for the design choices DESIGN.md calls out.

A1  copy pipelining (Section 5.2): chunked encrypt||transfer vs serial.
A2  single-copy memcpy (Section 4.4.2) vs the naive double-copy design.
A3  per-user GPU contexts (Section 4.5): context-switch cost sweep, and
    the Volta-style "no context switch" future-work projection.
A4  CPU AEAD bandwidth sensitivity: where the add/mul crossover moves.
"""

import pytest

from repro.evalkit.figures import ablation_pipelining, ablation_single_copy
from repro.evalkit.harness import GDEV, HIX, run_multiuser, run_single
from repro.evalkit.report import render_table
from repro.sim.costs import CostModel
from repro.system import Machine, MachineConfig
from repro.workloads import MatrixAdd
from repro.workloads.rodinia import BackProp, Pathfinder

INFLATION = 256.0


@pytest.mark.benchmark(group="ablations")
def test_a1_pipelining(benchmark, publish):
    data = benchmark.pedantic(ablation_pipelining,
                              kwargs={"inflation": INFLATION},
                              rounds=1, iterations=1)
    publish("ablation_a1_pipelining", data.render())
    assert data.series["pipelined-4MB"][0] < data.series["serial"][0]
    # Finer chunks help slightly more (less fill time), then plateau.
    assert (data.series["pipelined-1MB"][0]
            <= data.series["pipelined-4MB"][0] + 1e-6)


@pytest.mark.benchmark(group="ablations")
def test_a2_single_copy(benchmark, publish):
    data = benchmark.pedantic(ablation_single_copy,
                              kwargs={"inflation": INFLATION},
                              rounds=1, iterations=1)
    publish("ablation_a2_single_copy", data.render())
    single = data.series["single-copy (HIX)"][0]
    double = data.series["double-copy (naive)"][0]
    assert double > 1.25 * single  # the copy+re-encrypt tax is material


def _a3_rows():
    rows = []
    for label, overrides in (
            ("Fermi (120us switch)", {}),
            ("slow switch (500us)", {"gpu_context_switch": 500e-6}),
            ("Volta-style (no switch, full-rate crypto)",
             {"gpu_context_switch": 0.0,
              "gpu_aead_multiuser_efficiency": 1.0})):
        costs = CostModel().with_overrides(**overrides)
        workload = BackProp()
        gdev = run_multiuser(workload, GDEV, 2, costs)
        hix = run_multiuser(workload, HIX, 2, costs)
        rows.append([label, f"{gdev * 1e3:.2f}", f"{hix * 1e3:.2f}",
                     f"{(hix / gdev - 1) * 100:+.1f}%"])
    return rows


@pytest.mark.benchmark(group="ablations")
def test_a3_context_switching(benchmark, publish):
    rows = benchmark.pedantic(_a3_rows, rounds=1, iterations=1)
    publish("ablation_a3_context_switching", render_table(
        "Ablation A3: 2-user BP makespan vs context-switch model",
        ["GPU model", "Gdev (ms)", "HIX (ms)", "HIX overhead"], rows))
    # The paper's expectation: Volta-style concurrency shrinks the gap.
    fermi_overhead = float(rows[0][3].rstrip("%"))
    volta_overhead = float(rows[2][3].rstrip("%"))
    assert volta_overhead < fermi_overhead


def _a4_rows():
    rows = []
    for label, bandwidth in (("1.0 GB/s", 1.0), ("1.9 GB/s (default)", 1.9),
                             ("6.0 GB/s (matches PCIe)", 6.0)):
        config = MachineConfig(
            data_inflation=INFLATION,
            costs=CostModel(cpu_aead_bandwidth=bandwidth * (1 << 30)))
        gdev = run_single(MatrixAdd(8192), GDEV, INFLATION,
                          machine=Machine(config)).milliseconds
        hix = run_single(MatrixAdd(8192), HIX, INFLATION,
                         machine=Machine(config)).milliseconds
        rows.append([label, f"{gdev:.1f}", f"{hix:.1f}", f"{hix / gdev:.2f}x"])
    return rows


@pytest.mark.benchmark(group="ablations")
def test_a4_aead_bandwidth_sensitivity(benchmark, publish):
    rows = benchmark.pedantic(_a4_rows, rounds=1, iterations=1)
    publish("ablation_a4_aead_bandwidth", render_table(
        "Ablation A4: matrix-add 8192 vs CPU AEAD bandwidth",
        ["SGX-SSL OCB throughput", "Gdev (ms)", "HIX (ms)", "slowdown"],
        rows))
    slowdowns = [float(row[3].rstrip("x")) for row in rows]
    # Faster crypto monotonically closes the gap; at PCIe-rate crypto the
    # encrypt stage hides behind the transfer entirely.
    assert slowdowns[0] > slowdowns[1] > slowdowns[2]


@pytest.mark.benchmark(group="ablations")
def test_a5_worst_case_pf_breakdown(benchmark, publish):
    """Where PF's +154% (paper) / +131% (here) actually goes."""
    result = benchmark.pedantic(
        run_single, args=(Pathfinder(), HIX, INFLATION),
        rounds=1, iterations=1)
    rows = sorted(((k, f"{v * 1e3:.2f}") for k, v in
                   result.breakdown.items()), key=lambda r: -float(r[1]))
    publish("ablation_a5_pf_breakdown", render_table(
        "Ablation A5: pathfinder (HIX) simulated-time breakdown",
        ["category", "ms"], rows))
    categories = dict(result.breakdown)
    # The secure copy dominates — PF is the transfer-bound worst case.
    assert categories["copy_h2d"] > 0.5 * result.seconds
