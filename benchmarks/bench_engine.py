"""Event-kernel micro-benchmarks: wall-clock cost of the substrate.

Every timing layer now executes on :mod:`repro.sim.engine`, so the
kernel's per-event overhead multiplies through the whole evaluation
(multi-user sweeps, serving runs, pipelined copies).  These benchmarks
isolate the kernel itself: the raw heap, the lane layer under native
FIFO, backpressured lanes, and the pipelined-copy process pair.
"""

import pytest

from repro.sim.engine import EventClock, TenantLane, WorkUnit, run_lanes
from repro.sim.pipeline import pipelined_time_events

MB = 1 << 20
GB = 1 << 30


@pytest.mark.benchmark(group="engine")
def test_perf_event_heap(benchmark):
    """Schedule + drain 10k bare events (no processes, no resource)."""
    def run():
        clock = EventClock()
        sink = []
        for index in range(10_000):
            clock.schedule(float(index % 97), sink.append)
        clock.run()
        return len(sink)

    assert benchmark(run) == 10_000


def _lanes(num_lanes: int, units: int, max_inflight: int = 1):
    return [TenantLane(units=[
        WorkUnit(100e-6 + index * 1e-6, 200e-6 + index * 2e-6, "u")
        for index in range(units)], max_inflight=max_inflight)
        for _ in range(num_lanes)]


@pytest.mark.benchmark(group="engine")
def test_perf_run_lanes_native_fifo(benchmark):
    """8 lanes x 100 units through one engine, kernel-native FIFO."""
    benchmark(run_lanes, _lanes(8, 100), None, 120e-6)


@pytest.mark.benchmark(group="engine")
def test_perf_run_lanes_backpressured(benchmark):
    """Deep lanes against an inflight cap: the block/resume path."""
    benchmark(run_lanes, _lanes(4, 200, max_inflight=2), None, 120e-6)


@pytest.mark.benchmark(group="engine")
def test_perf_pipeline_events(benchmark):
    """256 chunk processes through a two-stage pipeline."""
    result = benchmark(pipelined_time_events, 256 * MB, [2 * GB, GB], MB,
                       [20e-6, 5e-6])
    assert result > 0.0
