"""Telemetry micro-benchmarks: the cost of windowed collection.

The time-series sampler's contract mirrors the tracer's: a serve run
with no sampler attached pays nothing (one ``None`` check per settle),
and an attached sampler stays cheap enough that always-on telemetry is
practical.  Three layers are pinned in the perf gate — the disabled
full-path serve run (tracked against ``bench_serve``'s equivalent),
the enabled run (sampler + clock listener live), and the raw
record/evaluate primitives (mark/observe throughput and a full
burn-rate evaluation over a populated sampler).
"""

import pytest

from repro.evalkit.serve_sweep import serve_run
from repro.obs.slo import (
    AlertManager,
    SloObjective,
    bad_series,
    good_series,
    latency_series,
)
from repro.obs.timeseries import TimeSeriesSampler
from repro.workloads import rodinia_workloads

INFLATION = 8192.0


def _nn_workload():
    return {w.name: w for w in rodinia_workloads()}["nn"]


@pytest.mark.benchmark(group="telemetry")
def test_perf_serve_telemetry_disabled(benchmark):
    """Full serve path with no sampler: the guard-only overhead."""
    workload = _nn_workload()

    def run():
        report = serve_run(workload, 2, scheduler="fair",
                           inflation=INFLATION)
        assert all(t.served == t.submitted for t in report.tenants)
        return report

    benchmark.pedantic(run, rounds=3, iterations=1)


@pytest.mark.benchmark(group="telemetry")
def test_perf_serve_telemetry_enabled(benchmark):
    """Same run with a live sampler on the kernel clock."""
    workload = _nn_workload()

    def run():
        sampler = TimeSeriesSampler()
        report = serve_run(workload, 2, scheduler="fair",
                           inflation=INFLATION, telemetry=sampler)
        assert all(t.served == t.submitted for t in report.tenants)
        return report

    benchmark.pedantic(run, rounds=3, iterations=1)


@pytest.mark.benchmark(group="telemetry")
def test_perf_sampler_record_10k(benchmark):
    """Raw mark + observe throughput across many windows."""
    def run():
        sampler = TimeSeriesSampler(width=1e-3)
        for step in range(10_000):
            time = step * 3.7e-5
            sampler.mark(good_series("t0"), time)
            sampler.observe(latency_series("t0"), time, 2e-4 + step * 1e-8)
        return len(sampler.names())

    assert benchmark(run) == 2


@pytest.mark.benchmark(group="telemetry")
def test_perf_alert_evaluation(benchmark):
    """Burn-rate + latency rule sweep over a populated sampler."""
    sampler = TimeSeriesSampler(width=1e-3)
    for window in range(200):
        time = window * 1e-3 + 1e-5
        sampler.mark(good_series("t0"), time, amount=40.0)
        sampler.mark(bad_series("t0"), time,
                     amount=4.0 if window % 3 else 0.0)
        for sub in range(8):
            sampler.observe(latency_series("t0"), time + sub * 1e-4,
                            1e-4 + (window % 7) * 2e-4)
    objectives = {"t0": SloObjective(availability=0.99,
                                     latency_target=8e-4)}

    def run():
        manager = AlertManager(sampler, objectives)
        manager.evaluate()
        return len(manager.report().alerts)

    assert benchmark(run) > 0
