"""Figure 8: two concurrent users, normalized to 1-user Gdev.

Paper reference point: HIX parallel execution about 45.2% worse than
parallel Gdev with two users, but still better than serving the users
sequentially.
"""

import pytest

from repro.evalkit.figures import figure8


@pytest.mark.benchmark(group="figure8")
def test_figure8(benchmark, publish):
    data = benchmark.pedantic(figure8, rounds=1, iterations=1)
    publish("figure8", data.render(), data=data)

    gdev = data.series["Gdev"]
    hix = data.series["HIX"]
    seq = data.series["HIX-sequential"]
    degradation = (sum(hix) / len(hix)) / (sum(gdev) / len(gdev)) - 1.0
    assert degradation == pytest.approx(0.452, abs=0.10)
    # Parallel HIX beats sequential service for every app (Section 5.4).
    for app, h, s in zip(data.x_labels, hix, seq):
        assert h < s, f"{app}: parallel should beat sequential"
    # Parallel Gdev with 2 users stays below 2x of one user.
    assert all(value < 2.0 for value in gdev)
