"""Wall-clock benchmarks and the perf-regression gate.

``bench_*.py`` modules are pytest-benchmark suites; ``perf_gate.py``
(run as ``python -m benchmarks.perf_gate``) executes the simulator
micro-benchmarks and compares them against the recorded baseline in
``benchmarks/baselines/simulator_perf.json``.
"""
