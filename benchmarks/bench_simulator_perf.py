"""Simulator micro-benchmarks: wall-clock cost of core operations.

Unlike the figure benchmarks (which report *simulated* time), these
measure the *library's own* performance with pytest-benchmark's full
statistics — useful for catching regressions in hot paths (MMU
translation, TLP routing, AEAD sealing, command dispatch).
"""

import numpy as np
import pytest

from repro.crypto.blob import open_blob, seal_blob
from repro.crypto.nonce import NonceSequence
from repro.crypto.suite import FastAuthSuite, OcbAesSuite
from repro.hw.mmu import AccessContext, AccessType, Mmu, PageFlags, PageTable
from repro.hw.phys_mem import PAGE_SIZE
from repro.system import Machine, MachineConfig

FLAGS = PageFlags.PRESENT | PageFlags.WRITABLE | PageFlags.USER


@pytest.mark.benchmark(group="simulator")
def test_perf_mmu_translation_hot(benchmark):
    mmu = Mmu()
    pt = PageTable(asid=1)
    pt.map_range(0x10000, 0x40000, 64 * PAGE_SIZE, FLAGS)
    ctx = AccessContext(asid=1)
    mmu.translate(pt, ctx, 0x10000, AccessType.READ)  # warm the TLB
    benchmark(mmu.translate, pt, ctx, 0x10000, AccessType.READ)


@pytest.mark.benchmark(group="simulator")
def test_perf_mmio_register_read(benchmark):
    machine = Machine(MachineConfig())
    driver = machine.make_gdev()
    from repro.gpu import regs
    benchmark(driver.channel.reg_read, regs.REG_ID)


@pytest.mark.benchmark(group="simulator")
def test_perf_fast_suite_seal_64k(benchmark):
    suite = FastAuthSuite(bytes(16))
    nonces = NonceSequence(1)
    payload = bytes(64 * 1024)
    benchmark(seal_blob, suite, nonces, payload)


@pytest.mark.benchmark(group="simulator")
def test_perf_fast_suite_open_64k(benchmark):
    suite = FastAuthSuite(bytes(16))
    blob = seal_blob(suite, NonceSequence(1), bytes(64 * 1024))
    benchmark(open_blob, suite, blob)


@pytest.mark.benchmark(group="simulator")
def test_perf_reference_ocb_seal_1k(benchmark):
    suite = OcbAesSuite(bytes(16))
    benchmark(suite.seal, b"\x01" * 12, bytes(1024))


@pytest.mark.benchmark(group="simulator")
def test_perf_gdev_memcpy_roundtrip_64k(benchmark):
    machine = Machine(MachineConfig())
    app = machine.gdev_session(machine.make_gdev()).cuCtxCreate()
    buf = app.cuMemAlloc(64 * 1024)
    data = np.arange(16 * 1024, dtype=np.int32)

    def roundtrip():
        app.cuMemcpyHtoD(buf, data)
        return app.cuMemcpyDtoH(buf, data.nbytes)

    result = benchmark(roundtrip)
    assert result == data.tobytes()


@pytest.mark.benchmark(group="simulator")
def test_perf_hix_secure_memcpy_roundtrip_64k(benchmark):
    machine = Machine(MachineConfig())
    service = machine.boot_hix()
    app = machine.hix_session(service).cuCtxCreate()
    buf = app.cuMemAlloc(64 * 1024)
    data = np.arange(16 * 1024, dtype=np.int32)

    def roundtrip():
        app.cuMemcpyHtoD(buf, data)
        return app.cuMemcpyDtoH(buf, data.nbytes)

    result = benchmark(roundtrip)
    assert result == data.tobytes()


@pytest.mark.benchmark(group="simulator")
def test_perf_kernel_launch(benchmark):
    machine = Machine(MachineConfig())
    app = machine.gdev_session(machine.make_gdev()).cuCtxCreate()
    buf = app.cuMemAlloc(4096)
    module = app.cuModuleLoad(["builtin.memset32"])
    benchmark(app.cuLaunchKernel, module, "builtin.memset32", [buf, 16, 1])


@pytest.mark.benchmark(group="simulator")
def test_perf_hix_session_setup(benchmark):
    """Attestation + 3-party DH (dominated by 2048-bit modular exps)."""
    machine = Machine(MachineConfig())
    service = machine.boot_hix()

    def session():
        app = machine.hix_session(service, "bench-user")
        app.cuCtxCreate()
        app.cuCtxDestroy()

    benchmark.pedantic(session, rounds=3, iterations=1)
