"""Perf-regression gate over the simulator micro-benchmarks.

Runs the micro-benchmark suites in :data:`BENCH_FILES` (via
pytest-benchmark), compares each benchmark's best (minimum) time
against the recorded baseline in
``benchmarks/baselines/simulator_perf.json``, and reports any that
exceed the tolerance band.

Usage::

    python -m benchmarks.perf_gate                   # report-only
    python -m benchmarks.perf_gate --strict          # exit 1 on regression
    python -m benchmarks.perf_gate --update-baseline # re-record baseline

Report-only mode is for CI, where shared-runner hardware variance makes
hard wall-clock limits flaky; developers run ``--strict`` locally before
refreshing the baseline.  The baseline is machine-specific: re-record it
(``--update-baseline``) when benchmarking hardware changes, and include
the refreshed file with any PR that intentionally changes performance.

These are *wall-clock* numbers only.  Simulated-time outputs (figures,
tables) are governed by the cost model and are checked bit-exactly by
the regular test suite, not here.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import Dict, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
#: Every file here feeds one shared baseline; add new suites to the
#: list and re-record with ``--update-baseline``.  Chaos-enabled runs
#: (``repro.chaos`` campaigns) are deliberately NOT benched here: a
#: campaign runs every workload twice (baseline + chaos) and its
#: wall-clock is dominated by fault-recovery churn, so it is exempt
#: from the serve perf baseline (CI covers it with the smoke-campaign
#: verdict instead — see docs/RESILIENCE.md).
BENCH_FILES = [
    Path(__file__).resolve().parent / "bench_simulator_perf.py",
    Path(__file__).resolve().parent / "bench_serve.py",
    Path(__file__).resolve().parent / "bench_engine.py",
    Path(__file__).resolve().parent / "bench_obs.py",
    Path(__file__).resolve().parent / "bench_telemetry.py",
    Path(__file__).resolve().parent / "bench_fleet.py",
    Path(__file__).resolve().parent / "bench_backends.py",
]
BASELINE_FILE = (Path(__file__).resolve().parent
                 / "baselines" / "simulator_perf.json")

#: A benchmark regresses when its best time exceeds baseline * (1 + tol).
#: Wall-clock medians wobble; minima are stable to ~10-20% on an idle
#: machine, so 50% headroom separates noise from real regressions.
DEFAULT_TOLERANCE = 0.50


def run_benchmarks() -> Dict[str, float]:
    """Run the micro-benchmark suite; return {name: best_seconds}."""
    with tempfile.TemporaryDirectory() as tmp:
        json_path = Path(tmp) / "bench.json"
        env = dict(os.environ)
        src = str(REPO_ROOT / "src")
        env["PYTHONPATH"] = (src + os.pathsep + env["PYTHONPATH"]
                             if env.get("PYTHONPATH") else src)
        proc = subprocess.run(
            [sys.executable, "-m", "pytest",
             *(str(path) for path in BENCH_FILES), "-q",
             "--benchmark-only", f"--benchmark-json={json_path}"],
            cwd=REPO_ROOT, env=env,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
        if proc.returncode != 0:
            sys.stdout.write(proc.stdout)
            raise SystemExit(f"benchmark run failed (exit {proc.returncode})")
        payload = json.loads(json_path.read_text())
    return {bench["name"]: bench["stats"]["min"]
            for bench in payload["benchmarks"]}


def load_baseline() -> Dict[str, float]:
    if not BASELINE_FILE.exists():
        return {}
    return json.loads(BASELINE_FILE.read_text())["benchmarks"]


def save_baseline(results: Dict[str, float]) -> None:
    BASELINE_FILE.parent.mkdir(parents=True, exist_ok=True)
    BASELINE_FILE.write_text(json.dumps({
        "note": ("best-of-run (min) seconds per benchmark; "
                 "machine-specific — refresh with "
                 "`python -m benchmarks.perf_gate --update-baseline`"),
        "benchmarks": {name: results[name] for name in sorted(results)},
    }, indent=2) + "\n")


def compare(results: Dict[str, float], baseline: Dict[str, float],
            tolerance: float) -> Tuple[bool, List[Tuple[str, float, float]]]:
    """Print the comparison table.

    Returns ``(ok, regressions)`` where *regressions* lists
    ``(name, baseline_seconds, current_seconds)`` for every benchmark
    over the tolerance band (a disappeared benchmark counts with a
    current time of ``inf``), sorted worst-ratio first.
    """
    regressions: List[Tuple[str, float, float]] = []
    width = max(len(name) for name in results)
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  "
          f"{'delta':>10}  {'ratio':>7}  verdict")
    for name in sorted(results):
        current = results[name]
        base = baseline.get(name)
        if base is None:
            print(f"{name:<{width}}  {'-':>12}  {current * 1e6:>10.1f}us  "
                  f"{'-':>10}  {'-':>7}  NEW (no baseline)")
            continue
        ratio = current / base
        if ratio > 1.0 + tolerance:
            verdict = f"REGRESSION (> +{tolerance:.0%})"
            regressions.append((name, base, current))
        elif ratio < 1.0 - tolerance:
            verdict = "improved (consider refreshing baseline)"
        else:
            verdict = "ok"
        print(f"{name:<{width}}  {base * 1e6:>10.1f}us  "
              f"{current * 1e6:>10.1f}us  {(current - base) * 1e6:>+8.1f}us  "
              f"{ratio:>6.2f}x  {verdict}")
    for name in sorted(set(baseline) - set(results)):
        print(f"{name:<{width}}  benchmark disappeared from the suite")
        regressions.append((name, baseline[name], float("inf")))
    regressions.sort(key=lambda entry: entry[2] / entry[1], reverse=True)
    return not regressions, regressions


def describe_worst(regressions: List[Tuple[str, float, float]]) -> str:
    """Human-readable blame line for the worst regressor."""
    name, base, current = regressions[0]
    if current == float("inf"):
        return f"worst regressor: {name} (disappeared from the suite)"
    return (f"worst regressor: {name} "
            f"({base * 1e6:.1f}us -> {current * 1e6:.1f}us, "
            f"{current / base:.2f}x baseline, "
            f"+{(current - base) * 1e6:.1f}us)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="benchmarks.perf_gate",
        description="run simulator micro-benchmarks against the baseline")
    parser.add_argument("--strict", action="store_true",
                        help="exit nonzero on regression (local runs)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="record current results as the new baseline")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="allowed slowdown fraction "
                             f"(default {DEFAULT_TOLERANCE})")
    args = parser.parse_args(argv)

    results = run_benchmarks()
    if args.update_baseline:
        save_baseline(results)
        print(f"baseline recorded: {BASELINE_FILE.relative_to(REPO_ROOT)} "
              f"({len(results)} benchmarks)")
        return 0

    baseline = load_baseline()
    if not baseline:
        print("no baseline recorded; run with --update-baseline first")
        return 1 if args.strict else 0
    ok, regressions = compare(results, baseline, args.tolerance)
    if ok:
        print("perf gate: PASS")
        return 0
    blame = describe_worst(regressions)
    if args.strict:
        print(f"perf gate: FAIL (strict mode) — {len(regressions)} "
              f"regression(s); {blame}")
        return 1
    print(f"perf gate: {len(regressions)} regression(s) reported "
          f"(report-only mode; use --strict to enforce) — {blame}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
