"""Figure 9: four concurrent users, normalized to 1-user Gdev.

Paper reference point: HIX parallel execution about 39.7% worse than
parallel Gdev with four users.
"""

import pytest

from repro.evalkit.figures import figure9


@pytest.mark.benchmark(group="figure9")
def test_figure9(benchmark, publish):
    data = benchmark.pedantic(figure9, rounds=1, iterations=1)
    publish("figure9", data.render(), data=data)

    gdev = data.series["Gdev"]
    hix = data.series["HIX"]
    degradation = (sum(hix) / len(hix)) / (sum(gdev) / len(gdev)) - 1.0
    assert degradation == pytest.approx(0.397, abs=0.12)
    for app, h, s in zip(data.x_labels, hix, data.series["HIX-sequential"]):
        assert h < s, f"{app}: parallel should beat sequential"
    # Four users on one GPU: everyone lands below 4x serial.
    assert all(value < 4.0 for value in gdev)
