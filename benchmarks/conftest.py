"""Shared infrastructure for the benchmark drivers.

Each benchmark regenerates one of the paper's tables or figures: it runs
the corresponding experiment (timed by pytest-benchmark), prints the
same rows/series the paper reports, and saves the rendered text under
``benchmarks/out/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def artifact_dir() -> pathlib.Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture
def publish(artifact_dir, capsys):
    """Print a rendered artifact and persist it for EXPERIMENTS.md.

    When *data* (anything with ``to_dict()`` or a plain dict) is given,
    a machine-readable JSON twin is written next to the text artifact
    for downstream plotting pipelines.
    """
    import json

    def _publish(name: str, text: str, data=None) -> None:
        (artifact_dir / f"{name}.txt").write_text(text + "\n")
        if data is not None:
            payload = data.to_dict() if hasattr(data, "to_dict") else data
            (artifact_dir / f"{name}.json").write_text(
                json.dumps(payload, indent=2) + "\n")
        with capsys.disabled():
            print(f"\n{text}\n")

    return _publish
