"""Figure 7: Rodinia single-user execution time, Gdev vs HIX.

Paper reference points: 26.8% slower on average; worst cases BP +81.5%,
NW +70.1%, PF +154%; GS comparable; HS/LUD/NN slightly faster under HIX
(lower task-initialization cost).
"""

import pytest

from repro.evalkit.figures import figure7

INFLATION = 256.0


@pytest.mark.benchmark(group="figure7")
def test_figure7(benchmark, publish):
    data = benchmark.pedantic(figure7, kwargs={"inflation": INFLATION},
                              rounds=1, iterations=1)
    publish("figure7", data.render(), data=data)

    overhead = dict(zip(data.x_labels, data.series["overhead_pct"]))
    # Worst cases, in the paper's order of severity.
    assert overhead["PF"] > overhead["BP"] > overhead["NW"] > 60.0
    assert overhead["BP"] == pytest.approx(81.5, abs=8.0)
    assert overhead["NW"] == pytest.approx(70.1, abs=8.0)
    assert overhead["PF"] > 110.0        # paper: +154% (transfer-bound cap)
    # GS: comparable performance (high compute-to-communication ratio).
    assert abs(overhead["GS"]) < 10.0
    # HS, LUD, NN: faster under HIX.
    for app in ("HS", "LUD", "NN"):
        assert overhead[app] < 0.0, f"{app} should be faster under HIX"
    # Mean per-app overhead near the paper's 26.8%.
    mean = sum(overhead.values()) / len(overhead)
    assert mean == pytest.approx(26.8, abs=6.0)
