"""The full reproduction acceptance run: every paper claim, graded.

This is the repository's headline artifact — one command that regenerates
all results and checks each published claim against the measured values.
"""

import pytest

from repro.evalkit.validation import validate_reproduction


@pytest.mark.benchmark(group="validation")
def test_validate_reproduction(benchmark, publish):
    report = benchmark.pedantic(validate_reproduction, rounds=1, iterations=1)
    publish("validation", report.render())
    failing = [c for c in report.claims if not c.holds]
    assert report.all_hold, f"claims failed: {[c.claim for c in failing]}"
    assert len(report.claims) >= 14
