"""Fleet-tier benchmarks: lite-session sweeps at population scale.

The fleet's pitch is that lightweight sessions (analytic cost charging,
no per-tenant crypto state) make 10k-1M-user sweeps tractable.  These
benchmarks pin that claim as a perf-gate budget: the 10k sweep is the
steady regression probe (three rounds), and the 100k sweep runs once
per gate so the acceptance-scale population stays within budget rather
than quietly regressing back to quadratic behaviour.

High inflation keeps modeled byte volumes realistic while the lite
lanes charge virtual time only — wall clock here is pure event-kernel
and router overhead.
"""

import pytest

from repro.fleet import Fleet, LiteProfile
from repro.system import MachineConfig
from repro.workloads import MatrixAdd

INFLATION = 8192.0


def _profile():
    return LiteProfile.from_workload(MatrixAdd(2048)).coalesced(4)


def _sweep(sessions: int):
    fleet = Fleet(machines=4, scheduler="fifo",
                  machine_config=MachineConfig(data_inflation=INFLATION))
    fleet.add_lite_sessions(_profile(), sessions)
    report = fleet.run()
    assert len(report.merged.tenants) == sessions
    assert report.makespan > 0.0
    return report


@pytest.mark.benchmark(group="fleet")
def test_perf_fleet_lite_10k(benchmark):
    """10k lite sessions over a 4-machine fleet, one shared clock."""
    benchmark.pedantic(_sweep, args=(10_000,), rounds=3, iterations=1)


@pytest.mark.benchmark(group="fleet")
def test_perf_fleet_lite_100k(benchmark):
    """Acceptance-scale population: 100k lite sessions, single round."""
    benchmark.pedantic(_sweep, args=(100_000,), rounds=1, iterations=1)
