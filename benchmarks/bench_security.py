"""Figure 10 / Section 5.5: the attack-surface analysis, executed.

Runs every attack class against both stacks and prints the outcome
matrix.  The benchmark time is the cost of mounting all attacks on
fresh machines — i.e. the full adversarial evaluation.
"""

import pytest

from repro.evalkit.security import (
    SUCCEEDS,
    render_attack_matrix,
    run_attack_matrix,
)


@pytest.mark.benchmark(group="security")
def test_attack_matrix(benchmark, publish):
    results = benchmark.pedantic(run_attack_matrix, rounds=1, iterations=1)
    publish("figure10_attack_matrix", render_attack_matrix(results))

    assert len(results) >= 10
    for result in results:
        assert result.baseline.startswith(SUCCEEDS), result.name
        assert not result.hix.startswith(SUCCEEDS), result.name
