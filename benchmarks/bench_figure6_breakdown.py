"""Figure 6 decomposition: where the HIX overhead actually goes.

The paper's analysis: "the majority of performance overheads in HIX are
from the authenticated encryption overheads between the user enclave
and GPU" (for addition), while multiplication's compute swamps them.
"""

import pytest

from repro.evalkit.figures import figure6_breakdown
from repro.evalkit.report import render_table

INFLATION = 256.0


@pytest.mark.benchmark(group="figure6")
def test_figure6_breakdown(benchmark, publish):
    breakdown = benchmark.pedantic(
        figure6_breakdown, kwargs={"inflation": INFLATION, "dim": 8192},
        rounds=1, iterations=1)
    categories = sorted({cat for run in breakdown.values() for cat in run})
    rows = [[run] + [f"{breakdown[run].get(cat, 0.0):.2f}"
                     for cat in categories]
            for run in sorted(breakdown)]
    publish("figure6_breakdown", render_table(
        "Figure 6 decomposition @8192 (ms per category)",
        ["run"] + categories, rows), data=breakdown)

    hix_add = breakdown["hix-add"]
    hix_mul = breakdown["hix-mul"]
    crypto = lambda run: (run.get("copy_h2d", 0) + run.get("copy_d2h", 0)
                          + run.get("crypto_gpu", 0))
    assert crypto(hix_add) / sum(hix_add.values()) > 0.6
    assert hix_mul["gpu_compute"] / sum(hix_mul.values()) > 0.7
